#include "load/fleet.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace setchain::load {

namespace {
constexpr int kMaxEvents = 512;

std::chrono::steady_clock::duration from_seconds_d(double s) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(s));
}
}  // namespace

PooledElementSource::PooledElementSource(const std::vector<core::Element>& pool,
                                         std::uint32_t sessions)
    : pool_(pool), stride_(sessions == 0 ? 1 : sessions), cursor_(stride_) {
  for (std::size_t s = 0; s < cursor_.size(); ++s) cursor_[s] = s;
}

const core::Element* PooledElementSource::next(std::uint32_t session) {
  const std::size_t s = session % stride_;
  if (cursor_[s] >= pool_.size()) return nullptr;
  const core::Element* e = &pool_[cursor_[s]];
  cursor_[s] += stride_;
  ++consumed_;
  return e;
}

/// One client session's state machine. Owned (and only touched) by the
/// fleet thread; epoll events carry a raw pointer back to it.
struct LoadFleet::Session {
  std::uint32_t idx = 0;
  int fd = -1;
  enum class State : std::uint8_t { kIdle, kConnecting, kRunning, kDead };
  State state = State::kIdle;
  std::uint32_t events = 0;  ///< currently-registered epoll interest
  std::uint32_t dial_attempts = 0;
  std::uint64_t next_req = 1;
  /// Open-loop arrivals waiting for window space, stamped with their
  /// schedule time (latency is charged from here, not from the send).
  std::deque<Clock::time_point> pending;
  std::unordered_map<std::uint64_t, Clock::time_point> in_flight;
  net::wire::FrameReader reader;
  codec::Bytes outbuf;
  std::size_t out_off = 0;
};

LoadFleet::LoadFleet(FleetConfig cfg) : cfg_(std::move(cfg)), rbuf_(64 * 1024) {
  epoll_fd_ = ::epoll_create1(0);
  sessions_.reserve(cfg_.sessions);
  for (std::uint32_t i = 0; i < cfg_.sessions; ++i) {
    auto s = std::make_unique<Session>();
    s->idx = i;
    s->in_flight.reserve(cfg_.window * 2);
    sessions_.push_back(std::move(s));
  }
}

LoadFleet::~LoadFleet() {
  close();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void LoadFleet::update_interest(Session& s) {
  if (s.fd < 0) return;
  std::uint32_t want = EPOLLIN;
  if (s.state == Session::State::kConnecting || !s.outbuf.empty()) {
    want |= EPOLLOUT;
  }
  if (want == s.events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.ptr = &s;
  ::epoll_ctl(epoll_fd_, s.events == 0 ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, s.fd, &ev);
  s.events = want;
}

bool LoadFleet::start_dial(Session& s) {
  const Target& t = cfg_.targets[s.idx % cfg_.targets.size()];
  s.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (s.fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(t.port);
  const char* host = t.host == "localhost" ? "127.0.0.1" : t.host.c_str();
  if (::inet_pton(AF_INET, host, &addr.sin_addr) != 1) {
    ::close(s.fd);
    s.fd = -1;
    return false;
  }
  ++s.dial_attempts;
  const int rc = ::connect(s.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(s.fd);
    s.fd = -1;
    return false;
  }
  s.state = Session::State::kConnecting;
  s.events = 0;
  update_interest(s);
  return true;
}

void LoadFleet::finish_dial(Session& s) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(s.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    // Dial failed (most likely an overflowed accept queue under a mass
    // connect): back to idle for a retry while the deadline allows.
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, s.fd, nullptr);
    ::close(s.fd);
    s.fd = -1;
    s.events = 0;
    s.state = Session::State::kIdle;
    return;
  }
  const int one = 1;
  ::setsockopt(s.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  net::wire::Hello h;
  h.role = net::wire::kRoleClient;
  h.sender = 0;  // informational; the transport assigns the endpoint id
  h.cluster = cfg_.cluster;
  s.outbuf = net::wire::encode_frame(net::wire::MsgType::kHello,
                                     net::wire::encode_hello(h));
  s.out_off = 0;
  s.state = Session::State::kRunning;
  ++alive_;
  flush(s, nullptr);
  update_interest(s);
}

std::uint32_t LoadFleet::connect() {
  if (epoll_fd_ < 0 || cfg_.targets.empty()) return 0;
  const auto deadline = Clock::now() + from_seconds_d(cfg_.connect_timeout_s);
  std::vector<epoll_event> evs(kMaxEvents);
  std::size_t next_idle = 0;
  for (;;) {
    // Top up the in-flight dial window.
    std::uint32_t connecting = 0;
    for (const auto& s : sessions_) {
      if (s->state == Session::State::kConnecting) ++connecting;
    }
    bool any_idle = false;
    for (std::size_t scan = 0; scan < sessions_.size(); ++scan) {
      if (connecting >= cfg_.connect_batch) break;
      Session& s = *sessions_[next_idle];
      next_idle = (next_idle + 1) % sessions_.size();
      if (s.state != Session::State::kIdle) continue;
      if (s.dial_attempts >= 5) continue;  // give up on this slot
      if (start_dial(s)) {
        ++connecting;
      }
      any_idle = true;
    }
    bool idle_left = false;
    for (const auto& s : sessions_) {
      if (s->state == Session::State::kIdle && s->dial_attempts < 5) idle_left = true;
    }
    if (connecting == 0 && !idle_left) break;
    if (Clock::now() >= deadline) break;
    const int n = ::epoll_wait(epoll_fd_, evs.data(), kMaxEvents, 20);
    for (int i = 0; i < n; ++i) {
      auto* s = static_cast<Session*>(evs[i].data.ptr);
      if (s->state == Session::State::kConnecting &&
          (evs[i].events & (EPOLLOUT | EPOLLERR | EPOLLHUP))) {
        finish_dial(*s);
      } else if (s->state == Session::State::kRunning &&
                 (evs[i].events & EPOLLOUT)) {
        flush(*s, nullptr);
        update_interest(*s);
      }
    }
    (void)any_idle;
  }
  // Anything still mid-dial at the deadline is dead for this run.
  for (auto& sp : sessions_) {
    Session& s = *sp;
    if (s.state == Session::State::kConnecting || s.state == Session::State::kIdle) {
      if (s.fd >= 0) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, s.fd, nullptr);
        ::close(s.fd);
        s.fd = -1;
      }
      s.state = Session::State::kDead;
    }
  }
  return alive_;
}

void LoadFleet::kill(Session& s, PhaseStats* st, bool decode_error) {
  if (s.state == Session::State::kDead) return;
  if (s.state == Session::State::kRunning && alive_ > 0) --alive_;
  if (st != nullptr) {
    if (decode_error) ++st->decode_errors;
    else ++st->io_errors;
  }
  if (s.fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, s.fd, nullptr);
    ::close(s.fd);
    s.fd = -1;
  }
  s.events = 0;
  s.state = Session::State::kDead;
  s.outbuf.clear();
  s.out_off = 0;
}

bool LoadFleet::flush(Session& s, PhaseStats* st) {
  if (s.state != Session::State::kRunning) return false;
  while (s.out_off < s.outbuf.size()) {
    const ssize_t w = ::send(s.fd, s.outbuf.data() + s.out_off,
                             s.outbuf.size() - s.out_off,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        update_interest(s);  // arm EPOLLOUT
        return false;
      }
      kill(s, st, /*decode_error=*/false);
      return false;
    }
    s.out_off += static_cast<std::size_t>(w);
  }
  s.outbuf.clear();
  s.out_off = 0;
  update_interest(s);  // disarm EPOLLOUT
  return true;
}

void LoadFleet::read_acks(Session& s, PhaseStats& st, Clock::time_point now) {
  if (s.state != Session::State::kRunning) return;
  for (;;) {
    const ssize_t got = ::recv(s.fd, rbuf_.data(), rbuf_.size(), MSG_DONTWAIT);
    if (got == 0) {
      kill(s, &st, /*decode_error=*/false);
      return;
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        kill(s, &st, /*decode_error=*/false);
      }
      return;
    }
    s.reader.feed(codec::ByteView(rbuf_.data(), static_cast<std::size_t>(got)));
    net::wire::FrameView f;
    while (s.reader.next_view(f) == net::wire::DecodeStatus::kOk) {
      if (f.type != net::wire::MsgType::kAddResponse) continue;
      const auto resp = net::wire::parse_add_response(f.payload);
      if (!resp) continue;
      const auto it = s.in_flight.find(resp->req_id);
      if (it == s.in_flight.end()) continue;  // ack from a previous phase
      ++st.acked;
      if (resp->accepted) ++st.accepted;
      const auto lat =
          std::chrono::duration_cast<std::chrono::microseconds>(now - it->second)
              .count();
      st.latency_us.record(lat > 0 ? static_cast<std::uint64_t>(lat) : 0);
      s.in_flight.erase(it);
    }
    if (s.reader.failed()) {
      kill(s, &st, /*decode_error=*/true);
      return;
    }
    if (static_cast<std::size_t>(got) < rbuf_.size()) return;  // drained
  }
}

void LoadFleet::pump(Session& s, IElementSource& source, PhaseStats& st,
                     bool closed_loop) {
  if (s.state != Session::State::kRunning) return;
  if (!s.outbuf.empty() && !flush(s, &st)) return;  // still backpressured
  while (s.state == Session::State::kRunning &&
         s.in_flight.size() < cfg_.window) {
    Clock::time_point stamp;
    if (closed_loop) {
      stamp = Clock::now();
    } else if (!s.pending.empty()) {
      stamp = s.pending.front();
    } else {
      return;
    }
    const core::Element* e = source.next(s.idx);
    if (e == nullptr) return;  // supply exhausted; arrivals park in pending
    if (!closed_loop) s.pending.pop_front();
    net::wire::AddRequest req;
    req.req_id = s.next_req++;
    req.element = *e;
    net::wire::encode_frame_into(s.outbuf, net::wire::MsgType::kAddRequest,
                                 net::wire::encode_add_request(req));
    s.out_off = 0;
    st.outbuf_peak = std::max<std::uint64_t>(st.outbuf_peak, s.outbuf.size());
    s.in_flight.emplace(req.req_id, stamp);
    ++st.sent;
    if (closed_loop) ++st.offered;  // closed loop: offered == sent
    if (!flush(s, &st)) return;     // finish this frame before the next
  }
}

LoadFleet::Session* LoadFleet::pick_session() {
  if (alive_ == 0) return nullptr;
  for (std::size_t scan = 0; scan < sessions_.size(); ++scan) {
    Session& s = *sessions_[rr_];
    rr_ = (rr_ + 1) % sessions_.size();
    if (s.state == Session::State::kRunning) return &s;
  }
  return nullptr;
}

PhaseStats LoadFleet::run_phase(IElementSource& source,
                                const ArrivalConfig& arrival_cfg,
                                double duration_s) {
  PhaseStats st;
  ArrivalProcess arrival(arrival_cfg);
  const bool open = arrival.open_loop();
  const auto t0 = Clock::now();
  const auto t_end = t0 + from_seconds_d(duration_s);
  const auto to_tp = [&](double s) { return t0 + from_seconds_d(s); };
  Clock::time_point next_arr{};
  if (open) next_arr = to_tp(arrival.next());

  if (!open) {
    for (auto& s : sessions_) pump(*s, source, st, /*closed_loop=*/true);
  }

  std::vector<epoll_event> evs(kMaxEvents);
  for (;;) {
    const auto now = Clock::now();
    if (now >= t_end) break;
    if (open) {
      // Offer every due arrival. The schedule is independent of cluster
      // health: when no session can absorb an arrival it is shed, not
      // deferred — deferral would silently convert the run to closed loop.
      while (next_arr <= now) {
        ++st.offered;
        Session* s = pick_session();
        if (s == nullptr || s->pending.size() >= cfg_.max_pending) {
          ++st.shed;
        } else {
          s->pending.push_back(next_arr);
          st.queue_peak =
              std::max<std::uint64_t>(st.queue_peak, s->pending.size());
          pump(*s, source, st, /*closed_loop=*/false);
        }
        next_arr = to_tp(arrival.next());
      }
    }
    int timeout_ms = 10;
    const auto horizon = open ? std::min(next_arr, t_end) : t_end;
    const auto gap =
        std::chrono::duration_cast<std::chrono::milliseconds>(horizon - Clock::now())
            .count();
    timeout_ms = static_cast<int>(std::clamp<long long>(gap, 0, timeout_ms));
    const int n = ::epoll_wait(epoll_fd_, evs.data(), kMaxEvents, timeout_ms);
    const auto t_rx = Clock::now();
    for (int i = 0; i < n; ++i) {
      auto* s = static_cast<Session*>(evs[i].data.ptr);
      if (evs[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
        read_acks(*s, st, t_rx);
      }
      if (s->state == Session::State::kRunning) {
        // Acks freed window space (or EPOLLOUT cleared backpressure):
        // immediately refill so the window, not the event cadence, is the
        // throughput bound.
        pump(*s, source, st, /*closed_loop=*/!open);
      }
    }
  }

  // Grace window: collect in-flight acks so tail latency is not truncated.
  const auto t_drain = Clock::now() + from_seconds_d(cfg_.drain_s);
  for (;;) {
    bool waiting = false;
    for (const auto& s : sessions_) {
      if (s->state == Session::State::kRunning &&
          (!s->in_flight.empty() || !s->outbuf.empty())) {
        waiting = true;
        break;
      }
    }
    if (!waiting || Clock::now() >= t_drain) break;
    const int n = ::epoll_wait(epoll_fd_, evs.data(), kMaxEvents, 10);
    const auto t_rx = Clock::now();
    for (int i = 0; i < n; ++i) {
      auto* s = static_cast<Session*>(evs[i].data.ptr);
      if (evs[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
        read_acks(*s, st, t_rx);
      }
      if (s->state == Session::State::kRunning && !s->outbuf.empty()) {
        flush(*s, &st);  // let a half-written frame finish
      }
    }
  }

  st.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  for (auto& sp : sessions_) {
    Session& s = *sp;
    st.pending_end += s.pending.size();
    st.in_flight_end += s.in_flight.size();
    s.pending.clear();
    s.in_flight.clear();
  }
  st.sessions_alive = alive_;
  return st;
}

void LoadFleet::close() {
  for (auto& sp : sessions_) {
    Session& s = *sp;
    if (s.fd >= 0) {
      if (epoll_fd_ >= 0) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, s.fd, nullptr);
      ::close(s.fd);
      s.fd = -1;
    }
    s.events = 0;
    if (s.state != Session::State::kDead) s.state = Session::State::kDead;
  }
  alive_ = 0;
}

std::uint32_t LoadFleet::sessions_alive() const { return alive_; }

}  // namespace setchain::load
