#include "load/arrival.hpp"

#include <cmath>
#include <limits>

namespace setchain::load {

const char* arrival_kind_name(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kUniform: return "uniform";
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBurst: return "burst";
  }
  return "?";
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed ^ 0xA881D7ULL) {
  if (cfg_.kind == ArrivalKind::kBurst && cfg_.burst_rate <= 0) {
    cfg_.burst_rate = 4.0 * cfg_.rate;
  }
}

double ArrivalProcess::rate_at(double t) const {
  if (cfg_.kind != ArrivalKind::kBurst) return cfg_.rate;
  const double period = cfg_.burst_on_s + cfg_.burst_off_s;
  if (period <= 0) return cfg_.burst_rate;
  const double pos = std::fmod(t, period);
  return pos < cfg_.burst_on_s ? cfg_.burst_rate : cfg_.rate;
}

double ArrivalProcess::segment_end(double t) const {
  if (cfg_.kind != ArrivalKind::kBurst) {
    return std::numeric_limits<double>::infinity();
  }
  const double period = cfg_.burst_on_s + cfg_.burst_off_s;
  if (period <= 0) return std::numeric_limits<double>::infinity();
  const double base = std::floor(t / period) * period;
  const double pos = t - base;
  return pos < cfg_.burst_on_s ? base + cfg_.burst_on_s : base + period;
}

double ArrivalProcess::next() {
  if (!open_loop()) return t_;
  switch (cfg_.kind) {
    case ArrivalKind::kUniform:
      t_ += 1.0 / cfg_.rate;
      return t_;
    case ArrivalKind::kPoisson:
      t_ += rng_.exponential(cfg_.rate);
      return t_;
    case ArrivalKind::kBurst:
      break;
  }
  // Piecewise Poisson: draw at the current segment's rate; a draw crossing
  // the segment boundary is clipped there and redrawn at the new rate —
  // exact for exponential gaps (memorylessness), and it keeps each phase's
  // realized rate honest instead of smearing bursts across boundaries.
  for (;;) {
    const double r = rate_at(t_);
    const double end = segment_end(t_);
    if (r <= 0) {  // silent segment: jump to its end
      t_ = end;
      continue;
    }
    const double gap = rng_.exponential(r);
    if (t_ + gap <= end) {
      t_ += gap;
      return t_;
    }
    t_ = end;
  }
}

}  // namespace setchain::load
