#pragma once

#include <cstdint>
#include <string>

#include "load/fleet.hpp"

namespace setchain::load {

/// Thread count and peak RSS of this process, sampled from /proc while a
/// run is live. The thread count is the clearest resource signature of the
/// generator architecture: thread-per-connection scales with sessions, the
/// event loop keeps it flat.
struct ProcSample {
  std::uint64_t threads = 0;
  std::uint64_t vm_hwm_kb = 0;
};

ProcSample sample_proc();

/// Minimal append-only JSON builder — enough structure for the loadgen /
/// bench reports without pulling in a JSON library. The caller is
/// responsible for balanced begin/end calls; keys are emitted verbatim
/// (no escaping: report keys are compile-time literals).
class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(const char* k);
  void value(const std::string& v);  ///< escaped string value
  void value(const char* v) { value(std::string(v)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(std::uint32_t v) { value(static_cast<std::uint64_t>(v)); }
  void value(bool v);

  template <typename T>
  void kv(const char* k, T v) {
    key(k);
    value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void open(char c);
  void close(char c);
  void comma();

  std::string out_;
  bool need_comma_ = false;
};

/// Append one phase's stats as a JSON object (latency in milliseconds,
/// converted from the recorder's microsecond buckets) under the current
/// writer position. `label` names the phase; `rate` is the offered target.
void append_phase_json(JsonWriter& w, const char* label, double rate,
                       const PhaseStats& st);

/// Write `json` to `path` ("" = skip) and echo it to stdout.
void emit_report(const std::string& json, const std::string& path);

}  // namespace setchain::load
