#include "load/report.hpp"

#include <cinttypes>
#include <cstdio>

namespace setchain::load {

ProcSample sample_proc() {
  ProcSample s;
  if (FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
      unsigned long long v = 0;
      if (std::sscanf(line, "Threads: %llu", &v) == 1) s.threads = v;
      else if (std::sscanf(line, "VmHWM: %llu", &v) == 1) s.vm_hwm_kb = v;
    }
    std::fclose(f);
  }
  return s;
}

void JsonWriter::open(char c) {
  comma();
  out_.push_back(c);
  need_comma_ = false;
}

void JsonWriter::close(char c) {
  out_.push_back(c);
  need_comma_ = true;
}

void JsonWriter::comma() {
  if (need_comma_) out_.push_back(',');
  need_comma_ = false;
}

void JsonWriter::key(const char* k) {
  comma();
  out_.push_back('"');
  out_ += k;
  out_ += "\":";
  need_comma_ = false;
}

void JsonWriter::value(const std::string& v) {
  comma();
  out_.push_back('"');
  for (const char c : v) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
  need_comma_ = true;
}

void JsonWriter::value(double v) {
  comma();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out_ += buf;
  need_comma_ = true;
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out_ += buf;
  need_comma_ = true;
}

void JsonWriter::value(std::int64_t v) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_ += buf;
  need_comma_ = true;
}

void JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  need_comma_ = true;
}

namespace {
double us_to_ms(std::uint64_t us) { return static_cast<double>(us) / 1000.0; }
}  // namespace

void append_phase_json(JsonWriter& w, const char* label, double rate,
                       const PhaseStats& st) {
  w.begin_object();
  w.kv("label", label);
  w.kv("target_rate", rate);
  w.kv("wall_s", st.wall_s);
  w.kv("offered", st.offered);
  w.kv("shed", st.shed);
  w.kv("sent", st.sent);
  w.kv("acked", st.acked);
  w.kv("accepted", st.accepted);
  w.kv("pending_end", st.pending_end);
  w.kv("in_flight_end", st.in_flight_end);
  w.kv("io_errors", st.io_errors);
  w.kv("decode_errors", st.decode_errors);
  w.kv("queue_peak", st.queue_peak);
  w.kv("outbuf_peak_bytes", st.outbuf_peak);
  w.kv("sessions_alive", st.sessions_alive);
  const double eps =
      st.wall_s > 0 ? static_cast<double>(st.acked) / st.wall_s : 0.0;
  w.kv("acked_per_sec", eps);
  w.key("latency_ms");
  w.begin_object();
  w.kv("count", st.latency_us.count());
  w.kv("min", us_to_ms(st.latency_us.min()));
  w.kv("mean", us_to_ms(static_cast<std::uint64_t>(st.latency_us.mean())));
  w.kv("p50", us_to_ms(st.latency_us.percentile(0.50)));
  w.kv("p90", us_to_ms(st.latency_us.percentile(0.90)));
  w.kv("p99", us_to_ms(st.latency_us.percentile(0.99)));
  w.kv("p999", us_to_ms(st.latency_us.percentile(0.999)));
  w.kv("max", us_to_ms(st.latency_us.max()));
  w.end_object();
  w.end_object();
}

void emit_report(const std::string& json, const std::string& path) {
  std::printf("%s\n", json.c_str());
  if (!path.empty()) {
    if (FILE* f = std::fopen(path.c_str(), "w")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    }
  }
}

}  // namespace setchain::load
