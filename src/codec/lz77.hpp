#pragma once

#include <optional>

#include "codec/bytes.hpp"

namespace setchain::codec {

/// "szx" — a from-scratch LZ77 byte codec standing in for Brotli (RFC 7932),
/// which the paper uses to compress Compresschain batches. Only the achieved
/// compression ratio enters the paper's analytical model, so a greedy LZ77
/// with a hash-chain match finder is an adequate substitute; on the
/// Arbitrum-like workload it reaches the same 2.5-3.5x band the paper reports
/// (see tests/codec and EXPERIMENTS.md).
///
/// Stream layout:
///   magic "SZX1" (4 bytes) | varint raw_size | token stream
/// Token stream:
///   0x00 len  <len literal bytes>        literal run (len >= 1)
///   0x01 len dist                        match: copy `len` bytes from
///                                        `dist` back (len >= kMinMatch)
/// All integers are varints.
struct Lz77Config {
  int window_log2 = 16;       ///< search window: 64 KiB
  int max_chain = 32;         ///< match-finder effort
  std::size_t min_match = 4;  ///< shortest emitted match
  std::size_t max_match = 1 << 15;
};

/// Compress `in`. Never fails; incompressible input grows by a small framing
/// overhead only.
Bytes lz77_compress(ByteView in, const Lz77Config& cfg = {});

/// Decompress; returns nullopt on any malformed input (bad magic, truncated
/// stream, out-of-range match, size mismatch). Byzantine servers may append
/// arbitrary bytes as "compressed batches", so this must be total.
std::optional<Bytes> lz77_decompress(ByteView in);

/// Convenience: measured ratio raw/compressed for diagnostics.
double compression_ratio(ByteView raw, ByteView compressed);

}  // namespace setchain::codec
