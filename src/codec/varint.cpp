#include "codec/varint.hpp"

namespace setchain::codec {

void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

std::optional<std::uint64_t> get_varint(ByteView in, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (pos >= in.size()) return std::nullopt;
    const std::uint8_t b = in[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
  return std::nullopt;  // overlong encoding
}

}  // namespace setchain::codec
