#include "codec/lz77.hpp"

#include <array>
#include <cstring>

#include "codec/byte_io.hpp"

namespace setchain::codec {

namespace {

constexpr std::array<std::uint8_t, 4> kMagic = {'S', 'Z', 'X', '1'};
constexpr std::uint8_t kTokLiteral = 0x00;
constexpr std::uint8_t kTokMatch = 0x01;

inline std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 17;  // 15-bit hash
}

}  // namespace

Bytes lz77_compress(ByteView in, const Lz77Config& cfg) {
  Writer w;
  w.bytes(kMagic);
  w.varint(in.size());

  const std::size_t n = in.size();
  const std::size_t window = std::size_t{1} << cfg.window_log2;

  // head[h] = most recent position with hash h; prev[i % window] = previous
  // position with the same hash as i (classic hash-chain match finder).
  constexpr std::size_t kHashSize = 1 << 15;
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(std::min(window, n ? n : 1), -1);

  std::size_t lit_start = 0;  // start of the pending literal run
  std::size_t i = 0;

  auto flush_literals = [&](std::size_t end) {
    while (lit_start < end) {
      const std::size_t len = std::min<std::size_t>(end - lit_start, 1 << 16);
      w.u8(kTokLiteral);
      w.varint(len);
      w.bytes(in.subspan(lit_start, len));
      lit_start += len;
    }
  };

  auto insert = [&](std::size_t pos) {
    if (pos + 4 > n) return;
    const std::uint32_t h = hash4(in.data() + pos);
    prev[pos % window] = head[h];
    head[h] = static_cast<std::int64_t>(pos);
  };

  while (i + cfg.min_match <= n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (i + 4 <= n) {
      std::int64_t cand = head[hash4(in.data() + i)];
      int chain = cfg.max_chain;
      while (cand >= 0 && chain-- > 0 &&
             i - static_cast<std::size_t>(cand) <= window) {
        const std::size_t c = static_cast<std::size_t>(cand);
        const std::size_t limit = std::min(n - i, cfg.max_match);
        std::size_t len = 0;
        while (len < limit && in[c + len] == in[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - c;
          if (len >= limit) break;
        }
        cand = prev[c % window];
      }
    }

    if (best_len >= cfg.min_match) {
      flush_literals(i);
      w.u8(kTokMatch);
      w.varint(best_len);
      w.varint(best_dist);
      // Index the covered positions so later matches can reference them.
      const std::size_t end = i + best_len;
      for (; i < end; ++i) insert(i);
      lit_start = i;
    } else {
      insert(i);
      ++i;
    }
  }
  flush_literals(n);
  return w.take();
}

std::optional<Bytes> lz77_decompress(ByteView in) {
  Reader r(in);
  const auto magic = r.bytes(4);
  if (!magic || !std::equal(magic->begin(), magic->end(), kMagic.begin())) {
    return std::nullopt;
  }
  const auto raw_size = r.varint();
  if (!raw_size) return std::nullopt;
  // Defensive cap: a Byzantine peer must not make us allocate unbounded
  // memory from a tiny header. 256 MiB is far above any legitimate batch.
  if (*raw_size > (std::uint64_t{256} << 20)) return std::nullopt;

  Bytes out;
  out.reserve(static_cast<std::size_t>(*raw_size));
  while (!r.done()) {
    const auto tok = r.u8();
    if (!tok) return std::nullopt;
    if (*tok == kTokLiteral) {
      const auto len = r.varint();
      if (!len || *len == 0) return std::nullopt;
      const auto data = r.bytes(static_cast<std::size_t>(*len));
      if (!data) return std::nullopt;
      append(out, *data);
    } else if (*tok == kTokMatch) {
      const auto len = r.varint();
      const auto dist = r.varint();
      if (!len || !dist) return std::nullopt;
      if (*dist == 0 || *dist > out.size() || *len == 0) return std::nullopt;
      // Byte-by-byte copy: overlapping matches (dist < len) are legal and
      // reproduce run-length behaviour.
      std::size_t src = out.size() - static_cast<std::size_t>(*dist);
      for (std::uint64_t k = 0; k < *len; ++k) out.push_back(out[src++]);
    } else {
      return std::nullopt;
    }
    if (out.size() > *raw_size) return std::nullopt;
  }
  if (out.size() != *raw_size) return std::nullopt;
  return out;
}

double compression_ratio(ByteView raw, ByteView compressed) {
  if (compressed.empty()) return 0.0;
  return static_cast<double>(raw.size()) / static_cast<double>(compressed.size());
}

}  // namespace setchain::codec
