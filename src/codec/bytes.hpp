#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace setchain::codec {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline void append(Bytes& out, ByteView in) {
  out.insert(out.end(), in.begin(), in.end());
}

inline void append(Bytes& out, std::string_view in) {
  out.insert(out.end(), in.begin(), in.end());
}

inline void append_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

inline void append_u32le(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

inline void append_u64le(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline std::uint32_t read_u32le(ByteView in) {
  return static_cast<std::uint32_t>(in[0]) | (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) | (static_cast<std::uint32_t>(in[3]) << 24);
}

inline std::uint64_t read_u64le(ByteView in) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | in[static_cast<std::size_t>(i)];
  return v;
}

}  // namespace setchain::codec
