#pragma once

#include <cstring>
#include <optional>

#include "codec/bytes.hpp"
#include "codec/varint.hpp"

namespace setchain::codec {

/// Bounds-checked sequential reader over a byte view. All accessors return
/// nullopt / false on underflow instead of throwing, because the inputs are
/// untrusted wire data (Byzantine peers may send garbage).
class Reader {
 public:
  explicit Reader(ByteView in) : in_(in) {}

  std::size_t remaining() const { return in_.size() - pos_; }
  bool done() const { return pos_ == in_.size(); }
  std::size_t position() const { return pos_; }

  std::optional<std::uint8_t> u8() {
    if (remaining() < 1) return std::nullopt;
    return in_[pos_++];
  }

  std::optional<std::uint32_t> u32le() {
    if (remaining() < 4) return std::nullopt;
    const std::uint32_t v = read_u32le(in_.subspan(pos_, 4));
    pos_ += 4;
    return v;
  }

  std::optional<std::uint64_t> u64le() {
    if (remaining() < 8) return std::nullopt;
    const std::uint64_t v = read_u64le(in_.subspan(pos_, 8));
    pos_ += 8;
    return v;
  }

  std::optional<std::uint64_t> varint() { return get_varint(in_, pos_); }

  std::optional<ByteView> bytes(std::size_t n) {
    if (remaining() < n) return std::nullopt;
    const ByteView v = in_.subspan(pos_, n);
    pos_ += n;
    return v;
  }

  /// Length-prefixed byte string (varint length).
  std::optional<ByteView> lp_bytes() {
    const auto n = varint();
    if (!n) return std::nullopt;
    return bytes(static_cast<std::size_t>(*n));
  }

 private:
  ByteView in_;
  std::size_t pos_ = 0;
};

/// Sequential writer building a Bytes buffer.
class Writer {
 public:
  Bytes take() { return std::move(out_); }
  const Bytes& buffer() const { return out_; }
  std::size_t size() const { return out_.size(); }

  Writer& u8(std::uint8_t v) {
    append_u8(out_, v);
    return *this;
  }
  Writer& u32le(std::uint32_t v) {
    append_u32le(out_, v);
    return *this;
  }
  Writer& u64le(std::uint64_t v) {
    append_u64le(out_, v);
    return *this;
  }
  Writer& varint(std::uint64_t v) {
    put_varint(out_, v);
    return *this;
  }
  Writer& bytes(ByteView v) {
    append(out_, v);
    return *this;
  }
  Writer& lp_bytes(ByteView v) {
    put_varint(out_, v.size());
    append(out_, v);
    return *this;
  }

 private:
  Bytes out_;
};

}  // namespace setchain::codec
