#pragma once

#include <cstdint>
#include <optional>

#include "codec/bytes.hpp"

namespace setchain::codec {

/// LEB128 unsigned varint (protobuf-style): 7 data bits per byte, MSB is the
/// continuation flag. Values up to 64 bits -> at most 10 bytes.
void put_varint(Bytes& out, std::uint64_t v);

/// Number of bytes put_varint would emit.
std::size_t varint_size(std::uint64_t v);

/// Decode a varint at `in[pos...]`; advances pos. Returns nullopt on
/// truncated or overlong (>10 byte) input.
std::optional<std::uint64_t> get_varint(ByteView in, std::size_t& pos);

}  // namespace setchain::codec
