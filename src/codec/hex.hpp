#pragma once

#include <optional>
#include <string>

#include "codec/bytes.hpp"

namespace setchain::codec {

/// Lowercase hex encoding of a byte string.
std::string to_hex(ByteView in);

/// Decode hex (case-insensitive). Returns nullopt on odd length or non-hex
/// characters.
std::optional<Bytes> from_hex(std::string_view hex);

}  // namespace setchain::codec
