#pragma once

#include <algorithm>

#include "sim/time.hpp"

namespace setchain::sim {

/// A serially-reusable resource (a CPU core, one direction of a network
/// link). Work items occupy it back-to-back; `acquire` returns the time at
/// which a job of the given duration completes if submitted now.
///
/// This is the standard "busy-until" queueing approximation: jobs are
/// processed FIFO at full speed, so completion(t, d) = max(now, busy_until)+d.
class BusyResource {
 public:
  /// Submit a job of duration `d` at time `now`; returns its completion time
  /// and advances the busy horizon.
  Time acquire(Time now, Time d) {
    const Time start = std::max(now, busy_until_);
    busy_until_ = start + (d < 0 ? 0 : d);
    busy_accum_ += busy_until_ - start;
    return busy_until_;
  }

  /// Time at which the resource next becomes free.
  Time busy_until() const { return busy_until_; }

  /// Total busy time accumulated (for utilisation reporting).
  Time total_busy() const { return busy_accum_; }

  void reset() {
    busy_until_ = 0;
    busy_accum_ = 0;
  }

 private:
  Time busy_until_ = 0;
  Time busy_accum_ = 0;
};

}  // namespace setchain::sim
