#pragma once

#include <array>
#include <cstdint>

namespace setchain::sim {

/// Deterministic xoshiro256** PRNG seeded via SplitMix64.
///
/// We do not use <random> engines because their distributions are not
/// guaranteed to produce identical streams across standard-library
/// implementations; reproducible experiment traces are a hard requirement.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling so the
  /// result is exactly uniform.
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal with the given *underlying* normal parameters.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (events per unit).
  double exponential(double rate);

  /// Bernoulli trial.
  bool chance(double p);

  /// Derive an independent child RNG (for per-node streams).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_;
};

/// SplitMix64 step, exposed for seeding/hashing helpers.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace setchain::sim
