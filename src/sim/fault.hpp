#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace setchain::sim {

using NodeId = std::uint32_t;

/// Wildcard node selector: "any node" in a link filter.
inline constexpr NodeId kAnyNode = 0xFFFFFFFFu;

/// Sentinel heal time for faults that never recover within the run.
inline constexpr Time kNeverHeals = std::numeric_limits<Time>::max();

/// The adversarial network/process behaviours the Setchain papers assume
/// away only for *correct* servers: an asynchronous network may lose,
/// delay, or cut messages, and servers may crash and come back (with or
/// without their disk). Every fault is active on the half-open sim-time
/// window [start, end).
enum class FaultKind : std::uint8_t {
  kDrop,        ///< drop matching messages with `probability`
  kPartition,   ///< cut the links between `group` and the rest
  kDelaySpike,  ///< add `extra_delay` to matching messages
  kCrash,       ///< node `from` is down; restarts at `end` (state kept or wiped)
  kCorrupt,     ///< flip bytes of matching messages with `probability`
};

const char* fault_kind_name(FaultKind k);

/// One scheduled fault. Construct through the factories — they fill in the
/// fields the kind actually uses; everything else keeps its default.
struct Fault {
  FaultKind kind = FaultKind::kDrop;
  Time start = 0;
  Time end = kNeverHeals;  ///< heal / restart time (exclusive)

  /// kDrop / kDelaySpike / kCorrupt: directed link filter (kAnyNode =
  /// wildcard). kCrash: the crashing node.
  NodeId from = kAnyNode;
  NodeId to = kAnyNode;

  double probability = 1.0;    ///< kDrop/kCorrupt: per-message hit probability
  std::vector<NodeId> group;   ///< kPartition: one side of the cut
  bool symmetric = true;       ///< kPartition: false cuts group->rest only
  Time extra_delay = 0;        ///< kDelaySpike
  bool wipe_state = false;     ///< kCrash: lose consolidated state too

  bool active(Time now) const { return now >= start && now < end; }
  bool heals() const { return end != kNeverHeals; }

  static Fault drop(NodeId from, NodeId to, double probability, Time start, Time end);
  static Fault partition(std::vector<NodeId> group, Time start, Time heal,
                         bool symmetric = true);
  static Fault delay_spike(Time extra, Time start, Time end, NodeId from = kAnyNode,
                           NodeId to = kAnyNode);
  static Fault crash(NodeId node, Time start, Time restart, bool wipe = false);
  static Fault corrupt(NodeId from, NodeId to, double probability, Time start,
                       Time end);
};

/// The full fault schedule of one run, replayable from (plan, seed).
struct FaultPlan {
  std::vector<Fault> faults;

  bool empty() const { return faults.empty(); }

  /// Parameter sanity against a cluster of `n` nodes: one message per
  /// violated constraint (heal before start, probability outside [0, 1],
  /// crash of node >= n, ...). Scenario::validate() folds these in.
  std::vector<std::string> validate(std::uint32_t n) const;
};

/// What the injector actually did, for tests that must prove a fault path
/// was exercised (not just configured).
struct FaultStats {
  std::uint64_t dropped_random = 0;     ///< lost to kDrop probability
  std::uint64_t dropped_partition = 0;  ///< lost crossing an active cut
  std::uint64_t dropped_crash = 0;      ///< lost to a down endpoint
  std::uint64_t delayed = 0;            ///< messages a spike delayed
  Time delay_added = 0;                 ///< total spike delay applied
  std::uint64_t corrupted = 0;          ///< messages kCorrupt mangled

  std::uint64_t total_dropped() const {
    return dropped_random + dropped_partition + dropped_crash;
  }
};

/// Per-message fault oracle consulted by Network::send. Deterministic: the
/// verdict stream is a pure function of (plan, seed, message sequence), so
/// a run replays bit-for-bit.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t seed);

  struct Verdict {
    bool deliver = true;
    Time extra_delay = 0;
    /// The delivered bytes should be mangled. Only transports that carry
    /// real encoded frames can honor this (LoopbackHub flips frame bytes);
    /// the in-memory sim Network moves typed values, not bytes, and
    /// ignores it.
    bool corrupt = false;
  };

  /// Fate of one message sent at `now` on link from->to. Precedence: a down
  /// endpoint loses the message outright, then partitions, then random
  /// drops, then delay spikes and corruption accumulate. Loopback
  /// (from == to) is only affected by crashes — a node is never partitioned
  /// from itself.
  Verdict on_message(Time now, NodeId from, NodeId to);

  /// Is `node` inside an active crash window at `now`?
  bool node_down(Time now, NodeId node) const;

  /// Delivery-time check: a message whose receiver was down at ANY point
  /// while it was in flight (sent_at, now] is lost with the process — the
  /// connection died, even if the node is back up by delivery time. Counts
  /// into dropped_crash when it drops. (The send-time check cannot see
  /// this — the crash may start after the message left the sender.)
  bool drop_at_delivery(Time sent_at, Time now, NodeId to);

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

 private:
  static bool in_group(const Fault& f, NodeId node);
  static bool link_matches(const Fault& f, NodeId from, NodeId to);

  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace setchain::sim
