#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace setchain::sim {

/// Handle to a scheduled event; allows cancellation (e.g. collector timers).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly.
  void cancel() {
    if (alive_) *alive_ = false;
  }
  bool pending() const { return alive_ && *alive_; }

 private:
  friend class Simulation;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// Single-threaded discrete-event simulation kernel.
///
/// Events with equal timestamps fire in scheduling order (FIFO), which makes
/// runs bit-for-bit reproducible given the same seed and schedule.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (clamped to now()).
  EventHandle schedule_at(Time at, std::function<void()> fn);

  /// Schedule `fn` after `delay` nanoseconds.
  EventHandle schedule_in(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Run until the queue drains or `horizon` is passed (whichever first).
  /// Returns the number of events executed.
  std::uint64_t run_until(Time horizon);

  /// Run until the queue is empty.
  std::uint64_t run() { return run_until(std::numeric_limits<Time>::max()); }

  bool empty() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }
  /// Timestamp of the earliest queued event (cancelled events may still
  /// occupy the queue, so this is a lower bound on the next *live* event —
  /// real-time pumps that sleep until it simply wake up early and re-check).
  /// Time max when the queue is empty.
  Time next_event_at() const {
    return queue_.empty() ? std::numeric_limits<Time>::max() : queue_.top().at;
  }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace setchain::sim
