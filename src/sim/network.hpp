#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/fault.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace setchain::sim {

/// Network configuration mirroring the paper's evaluation platform: a LAN
/// cluster (sub-millisecond base latency, ~1 Gb/s links) plus an optional
/// artificial `extra_delay` of 0/30/100 ms added to every message to emulate
/// a WAN deployment (Table 1, `network_delay`).
struct NetworkConfig {
  Time base_latency = from_micros(120);  ///< one-way LAN latency
  Time extra_delay = 0;                  ///< Table-1 network_delay knob
  double jitter_fraction = 0.05;         ///< +/- uniform jitter on latency
  double bandwidth_bytes_per_sec = 125e6;  ///< 1 Gb/s full-duplex per link
  bool model_link_contention = true;     ///< serialize bytes on sender egress
};

/// Point-to-point message network between `n` nodes.
///
/// Transfer time = egress serialization (size/bandwidth, FIFO per sender) +
/// propagation (base + extra + jitter). Local delivery (from == to) is
/// immediate apart from a fixed loopback cost.
///
/// An optional FaultInjector decides the fate of every message: dropped
/// (crash / partition / random loss) or delayed (spike) before the normal
/// transfer model applies. `messages_sent()`/`bytes_sent()` count *offered*
/// load — a message lost in flight was still sent (and is counted once per
/// receiver for broadcasts); `messages_dropped()` reports the losses.
class Network {
 public:
  Network(Simulation& sim, std::uint32_t n, NetworkConfig cfg, std::uint64_t seed);

  /// Arm fault injection for this run. Call before any traffic flows; the
  /// injector's RNG is derived from `seed`, so (plan, seed) replays exactly.
  void install_faults(FaultPlan plan, std::uint64_t seed);

  /// Deliver `fn` at the receiver after the modeled transfer of `bytes`.
  void send(NodeId from, NodeId to, std::uint64_t bytes, std::function<void()> fn);

  /// Convenience: send the same payload to every node except `from`.
  void broadcast(NodeId from, std::uint64_t bytes,
                 const std::function<void(NodeId)>& fn_per_peer);

  std::uint32_t size() const { return n_; }
  const NetworkConfig& config() const { return cfg_; }
  std::uint64_t messages_sent() const { return messages_; }
  std::uint64_t bytes_sent() const { return bytes_; }
  std::uint64_t messages_dropped() const {
    return injector_ ? injector_->stats().total_dropped() : 0;
  }

  /// Fault layer, if armed (null on a perfect network).
  const FaultInjector* faults() const { return injector_.get(); }
  /// True when a fault plan is armed: consumers (the consensus layer) enable
  /// their retransmission/catch-up paths only on lossy networks.
  bool lossy() const { return injector_ != nullptr; }
  /// Is `node` inside an active crash window right now?
  bool node_down(NodeId node) const {
    return injector_ && injector_->node_down(sim_.now(), node);
  }

  /// Per-node egress utilisation bookkeeping (diagnostics).
  Time egress_busy(NodeId node) const { return egress_[node].total_busy(); }

 private:
  Time transfer_delay(NodeId from, NodeId to, std::uint64_t bytes);

  Simulation& sim_;
  std::uint32_t n_;
  NetworkConfig cfg_;
  Rng rng_;
  std::vector<BusyResource> egress_;
  std::unique_ptr<FaultInjector> injector_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace setchain::sim
