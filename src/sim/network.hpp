#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace setchain::sim {

using NodeId = std::uint32_t;

/// Network configuration mirroring the paper's evaluation platform: a LAN
/// cluster (sub-millisecond base latency, ~1 Gb/s links) plus an optional
/// artificial `extra_delay` of 0/30/100 ms added to every message to emulate
/// a WAN deployment (Table 1, `network_delay`).
struct NetworkConfig {
  Time base_latency = from_micros(120);  ///< one-way LAN latency
  Time extra_delay = 0;                  ///< Table-1 network_delay knob
  double jitter_fraction = 0.05;         ///< +/- uniform jitter on latency
  double bandwidth_bytes_per_sec = 125e6;  ///< 1 Gb/s full-duplex per link
  bool model_link_contention = true;     ///< serialize bytes on sender egress
};

/// Point-to-point message network between `n` nodes.
///
/// Transfer time = egress serialization (size/bandwidth, FIFO per sender) +
/// propagation (base + extra + jitter). Local delivery (from == to) is
/// immediate apart from a fixed loopback cost.
class Network {
 public:
  Network(Simulation& sim, std::uint32_t n, NetworkConfig cfg, std::uint64_t seed);

  /// Deliver `fn` at the receiver after the modeled transfer of `bytes`.
  void send(NodeId from, NodeId to, std::uint64_t bytes, std::function<void()> fn);

  /// Convenience: send the same payload to every node except `from`.
  void broadcast(NodeId from, std::uint64_t bytes,
                 const std::function<void(NodeId)>& fn_per_peer);

  std::uint32_t size() const { return n_; }
  const NetworkConfig& config() const { return cfg_; }
  std::uint64_t messages_sent() const { return messages_; }
  std::uint64_t bytes_sent() const { return bytes_; }

  /// Per-node egress utilisation bookkeeping (diagnostics).
  Time egress_busy(NodeId node) const { return egress_[node].total_busy(); }

 private:
  Time transfer_delay(NodeId from, NodeId to, std::uint64_t bytes);

  Simulation& sim_;
  std::uint32_t n_;
  NetworkConfig cfg_;
  Rng rng_;
  std::vector<BusyResource> egress_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace setchain::sim
