#include "sim/simulation.hpp"

#include <limits>

namespace setchain::sim {

EventHandle Simulation::schedule_at(Time at, std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  if (at < now_) at = now_;
  queue_.push(Event{at, seq_++, std::move(fn), alive});
  return EventHandle{std::move(alive)};
}

std::uint64_t Simulation::run_until(Time horizon) {
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.at > horizon) break;
    // Move the event out before popping so the callback may schedule freely.
    Event ev = std::move(const_cast<Event&>(top));
    queue_.pop();
    now_ = ev.at;
    if (*ev.alive) {
      ev.fn();
      ++executed;
      ++executed_;
    }
  }
  // The clock stays at the last executed event when the queue drains early:
  // "how long did the system actually run" is the meaningful reading.
  return executed;
}

}  // namespace setchain::sim
