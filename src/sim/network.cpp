#include "sim/network.hpp"

#include <cassert>

namespace setchain::sim {

Network::Network(Simulation& sim, std::uint32_t n, NetworkConfig cfg, std::uint64_t seed)
    : sim_(sim), n_(n), cfg_(cfg), rng_(seed), egress_(n) {}

void Network::install_faults(FaultPlan plan, std::uint64_t seed) {
  injector_ = std::make_unique<FaultInjector>(std::move(plan), seed);
}

Time Network::transfer_delay(NodeId from, NodeId to, std::uint64_t bytes) {
  if (from == to) {
    // Loopback: same-host client -> server traffic in the paper's docker
    // deployment. Negligible but nonzero.
    return from_micros(5);
  }
  const double serialize_s =
      cfg_.bandwidth_bytes_per_sec > 0
          ? static_cast<double>(bytes) / cfg_.bandwidth_bytes_per_sec
          : 0.0;
  Time serialize = from_seconds(serialize_s);
  if (cfg_.model_link_contention) {
    // Occupy the sender's egress link FIFO; completion marks when the last
    // byte left the sender.
    const Time done = egress_[from].acquire(sim_.now(), serialize);
    serialize = done - sim_.now();
  }
  Time latency = cfg_.base_latency + cfg_.extra_delay;
  if (cfg_.jitter_fraction > 0) {
    const double j = rng_.uniform(-cfg_.jitter_fraction, cfg_.jitter_fraction);
    latency += static_cast<Time>(static_cast<double>(latency) * j);
  }
  return serialize + latency;
}

void Network::send(NodeId from, NodeId to, std::uint64_t bytes, std::function<void()> fn) {
  assert(from < n_ && to < n_);
  // Offered-load accounting happens unconditionally: a dropped message was
  // still sent (broadcasts count once per receiver either way).
  ++messages_;
  bytes_ += bytes;
  if (injector_) {
    const auto verdict = injector_->on_message(sim_.now(), from, to);
    if (!verdict.deliver) return;  // lost in flight: no delivery, no egress hold
    // Receiver liveness is re-checked at delivery time: a message whose
    // destination crashed at any point while it was in flight dies with the
    // process (the connection broke, even if the node restarted since).
    sim_.schedule_in(transfer_delay(from, to, bytes) + verdict.extra_delay,
                     [this, to, sent_at = sim_.now(), fn = std::move(fn)] {
                       if (injector_->drop_at_delivery(sent_at, sim_.now(), to)) return;
                       fn();
                     });
    return;
  }
  sim_.schedule_in(transfer_delay(from, to, bytes), std::move(fn));
}

void Network::broadcast(NodeId from, std::uint64_t bytes,
                        const std::function<void(NodeId)>& fn_per_peer) {
  for (NodeId peer = 0; peer < n_; ++peer) {
    if (peer == from) continue;
    send(from, peer, bytes, [fn_per_peer, peer] { fn_per_peer(peer); });
  }
}

}  // namespace setchain::sim
