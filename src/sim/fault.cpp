#include "sim/fault.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace setchain::sim {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kDelaySpike:
      return "delay_spike";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kCorrupt:
      return "corrupt";
  }
  return "?";
}

Fault Fault::drop(NodeId from, NodeId to, double probability, Time start, Time end) {
  Fault f;
  f.kind = FaultKind::kDrop;
  f.from = from;
  f.to = to;
  f.probability = probability;
  f.start = start;
  f.end = end;
  return f;
}

Fault Fault::partition(std::vector<NodeId> group, Time start, Time heal,
                       bool symmetric) {
  Fault f;
  f.kind = FaultKind::kPartition;
  f.group = std::move(group);
  f.start = start;
  f.end = heal;
  f.symmetric = symmetric;
  return f;
}

Fault Fault::delay_spike(Time extra, Time start, Time end, NodeId from, NodeId to) {
  Fault f;
  f.kind = FaultKind::kDelaySpike;
  f.extra_delay = extra;
  f.start = start;
  f.end = end;
  f.from = from;
  f.to = to;
  return f;
}

Fault Fault::crash(NodeId node, Time start, Time restart, bool wipe) {
  Fault f;
  f.kind = FaultKind::kCrash;
  f.from = node;
  f.start = start;
  f.end = restart;
  f.wipe_state = wipe;
  return f;
}

Fault Fault::corrupt(NodeId from, NodeId to, double probability, Time start,
                     Time end) {
  Fault f;
  f.kind = FaultKind::kCorrupt;
  f.from = from;
  f.to = to;
  f.probability = probability;
  f.start = start;
  f.end = end;
  return f;
}

std::vector<std::string> FaultPlan::validate(std::uint32_t n) const {
  std::vector<std::string> errors;
  const auto reject = [&errors](std::size_t i, const std::string& msg) {
    errors.push_back("fault #" + std::to_string(i) + ": " + msg);
  };
  const auto check_node = [&](std::size_t i, NodeId node, const char* what) {
    if (node != kAnyNode && node >= n) {
      reject(i, std::string(what) + " targets node " + std::to_string(node) +
                    " outside 0.." + std::to_string(n == 0 ? 0 : n - 1));
    }
  };

  // Crash windows may not overlap per node: a node cannot crash while it is
  // already down (the Experiment hooks would fire out of order).
  std::vector<std::pair<NodeId, std::pair<Time, Time>>> crash_windows;

  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault& f = faults[i];
    const char* kind = fault_kind_name(f.kind);
    if (f.start < 0) reject(i, std::string(kind) + " starts before time 0");
    if (f.end <= f.start) {
      reject(i, std::string(kind) + " heals at " + std::to_string(f.end) +
                    " ns, before (or at) its start " + std::to_string(f.start) + " ns");
    }
    switch (f.kind) {
      case FaultKind::kDrop:
      case FaultKind::kCorrupt:
        if (!(f.probability >= 0.0 && f.probability <= 1.0)) {
          reject(i, std::string(kind) + " probability " +
                        std::to_string(f.probability) + " outside [0, 1]");
        }
        check_node(i, f.from, "'from'");
        check_node(i, f.to, "'to'");
        break;
      case FaultKind::kPartition: {
        if (f.group.empty()) reject(i, "partition group is empty");
        std::unordered_set<NodeId> seen;
        for (const auto node : f.group) {
          check_node(i, node, "partition group");
          if (node == kAnyNode) reject(i, "partition group cannot contain the wildcard");
          if (!seen.insert(node).second) {
            reject(i, "partition group lists node " + std::to_string(node) + " twice");
          }
        }
        if (seen.size() >= n && n > 0) {
          reject(i, "partition group covers the whole cluster (nothing to cut)");
        }
        break;
      }
      case FaultKind::kDelaySpike:
        if (f.extra_delay <= 0) reject(i, "delay spike must add a positive delay");
        check_node(i, f.from, "delay 'from'");
        check_node(i, f.to, "delay 'to'");
        break;
      case FaultKind::kCrash: {
        if (f.from == kAnyNode) {
          reject(i, "crash needs a concrete node, not the wildcard");
        } else {
          check_node(i, f.from, "crash");
          for (const auto& [node, window] : crash_windows) {
            if (node != f.from) continue;
            if (f.start < window.second && window.first < f.end) {
              reject(i, "crash of node " + std::to_string(f.from) +
                            " overlaps another crash window of the same node");
            }
          }
          crash_windows.emplace_back(f.from, std::make_pair(f.start, f.end));
        }
        break;
      }
    }
  }
  return errors;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), rng_(seed ^ 0xFA017D0BULL) {}

bool FaultInjector::in_group(const Fault& f, NodeId node) {
  return std::find(f.group.begin(), f.group.end(), node) != f.group.end();
}

bool FaultInjector::link_matches(const Fault& f, NodeId from, NodeId to) {
  return (f.from == kAnyNode || f.from == from) && (f.to == kAnyNode || f.to == to);
}

bool FaultInjector::node_down(Time now, NodeId node) const {
  for (const auto& f : plan_.faults) {
    if (f.kind == FaultKind::kCrash && f.from == node && f.active(now)) return true;
  }
  return false;
}

bool FaultInjector::drop_at_delivery(Time sent_at, Time now, NodeId to) {
  for (const auto& f : plan_.faults) {
    if (f.kind != FaultKind::kCrash || f.from != to) continue;
    // Did a crash window overlap the flight interval (sent_at, now]?
    if (f.start <= now && sent_at < f.end) {
      ++stats_.dropped_crash;
      return true;
    }
  }
  return false;
}

FaultInjector::Verdict FaultInjector::on_message(Time now, NodeId from, NodeId to) {
  Verdict v;
  if (node_down(now, from) || node_down(now, to)) {
    ++stats_.dropped_crash;
    v.deliver = false;
    return v;
  }
  if (from == to) return v;  // loopback never partitions/drops/delays

  for (const auto& f : plan_.faults) {
    if (!f.active(now)) continue;
    switch (f.kind) {
      case FaultKind::kPartition: {
        const bool from_in = in_group(f, from);
        const bool to_in = in_group(f, to);
        const bool cut = f.symmetric ? (from_in != to_in) : (from_in && !to_in);
        if (cut) {
          ++stats_.dropped_partition;
          v.deliver = false;
          return v;
        }
        break;
      }
      case FaultKind::kDrop:
        if (link_matches(f, from, to) && rng_.chance(f.probability)) {
          ++stats_.dropped_random;
          v.deliver = false;
          return v;
        }
        break;
      case FaultKind::kDelaySpike:
        if (link_matches(f, from, to)) {
          v.extra_delay += f.extra_delay;
        }
        break;
      case FaultKind::kCorrupt:
        if (!v.corrupt && link_matches(f, from, to) && rng_.chance(f.probability)) {
          v.corrupt = true;
        }
        break;
      case FaultKind::kCrash:
        break;  // handled by the endpoint check above
    }
  }
  if (v.extra_delay > 0) {
    ++stats_.delayed;
    stats_.delay_added += v.extra_delay;
  }
  if (v.corrupt) ++stats_.corrupted;
  return v;
}

}  // namespace setchain::sim
