#pragma once

#include <cstdint>

namespace setchain::sim {

/// Simulated time in integer nanoseconds. Integer time keeps the event queue
/// ordering exactly reproducible across platforms (no floating-point ties).
using Time = std::int64_t;

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1'000;
constexpr Time kMillisecond = 1'000'000;
constexpr Time kSecond = 1'000'000'000;

constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}
constexpr Time from_millis(double ms) {
  return static_cast<Time>(ms * static_cast<double>(kMillisecond));
}
constexpr Time from_micros(double us) {
  return static_cast<Time>(us * static_cast<double>(kMicrosecond));
}
constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
constexpr double to_millis(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

}  // namespace setchain::sim
