#include "sim/rng.hpp"

#include <cmath>

namespace setchain::sim {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

double Rng::normal(double mean, double stddev) {
  // Box-Muller; draw until u1 is nonzero so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double rate) {
  double u = 0.0;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

bool Rng::chance(double p) { return uniform01() < p; }

Rng Rng::fork() { return Rng(next_u64() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace setchain::sim
