#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "codec/bytes.hpp"

namespace setchain::util {

/// Thread-safe free list of reusable byte buffers for the hot frame path:
/// every encoded outbound frame and every inbound frame payload lives in a
/// pooled buffer, so steady-state traffic recycles capacity instead of
/// paying the allocator per frame. acquire() hands out an EMPTY buffer
/// whose capacity is retained from its previous life; release() returns
/// one. Oversized buffers (above max_buffer_bytes) and overflow beyond
/// max_pooled are freed rather than hoarded, so a burst of 8 MiB batch
/// responses cannot pin that memory forever.
///
/// Ownership rule (docs/WIRE_FORMAT.md "Zero-copy views"): any ByteView
/// into a frame payload dies when the frame's buffer is released. Debug and
/// sanitizer builds enforce it loudly — release() poisons the returned
/// contents with 0xD5, so a stale view reads obvious garbage instead of
/// silently stale frame bytes.
class BufferPool {
 public:
  explicit BufferPool(std::size_t max_pooled = 64,
                      std::size_t max_buffer_bytes = 1u << 20);

  /// An empty buffer, reserve()d to at least `reserve_hint`.
  codec::Bytes acquire(std::size_t reserve_hint = 0);
  /// Return a buffer to the pool (or free it: oversized / pool full).
  void release(codec::Bytes&& b);

  static constexpr bool poison_on_release() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    !defined(NDEBUG)
    return true;
#else
    return false;
#endif
  }

  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t reuses = 0;    ///< acquires served from the free list
    std::uint64_t releases = 0;
    std::uint64_t discards = 0;  ///< releases freed instead of pooled
    std::size_t pooled = 0;      ///< buffers currently in the free list
  };
  Stats stats() const;

  /// Process-wide pool shared by all transports.
  static BufferPool& global();

 private:
  const std::size_t max_pooled_;
  const std::size_t max_buffer_bytes_;
  mutable std::mutex m_;
  std::vector<codec::Bytes> free_;
  std::uint64_t acquires_ = 0, reuses_ = 0, releases_ = 0, discards_ = 0;
};

}  // namespace setchain::util
