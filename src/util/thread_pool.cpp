#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace setchain::util {

struct ThreadPool::Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  // Completion is tracked under its own mutex (not the pool's) so a heavily
  // used pool never serializes unrelated jobs on one lock.
  std::mutex m;
  std::condition_variable done_cv;
  std::size_t done = 0;
};

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::run_some(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) return;
    (*job.fn)(i);
    std::lock_guard<std::mutex> lk(job.m);
    if (++job.done == job.n) job.done_cv.notify_all();
  }
}

void ThreadPool::worker_main() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_.wait(lk, [&] { return stop_ || !jobs_.empty(); });
      if (stop_) return;
      // Front job stays queued while it has unclaimed indices, so every
      // waking worker piles onto the same batch before later ones.
      job = jobs_.front();
    }
    run_some(*job);
    {
      std::lock_guard<std::mutex> lk(m_);
      std::erase(jobs_, job);  // exhausted: stop waking workers for it
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  {
    std::lock_guard<std::mutex> lk(m_);
    jobs_.push_back(job);
  }
  cv_.notify_all();
  run_some(*job);  // the caller is a lane too
  {
    std::lock_guard<std::mutex> lk(m_);
    std::erase(jobs_, job);
  }
  std::unique_lock<std::mutex> lk(job->m);
  job->done_cv.wait(lk, [&] { return job->done == job->n; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? static_cast<std::size_t>(hw - 1) : std::size_t{0};
  }());
  return pool;
}

}  // namespace setchain::util
