#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace setchain::util {

/// Persistent worker pool for data-parallel batch work. Deliberately tiny:
/// no futures, no task graph — the one primitive is parallel_for(n, fn),
/// which runs fn(0) .. fn(n-1) across the workers PLUS the calling thread
/// and returns when every index has completed. With zero workers (single-
/// core host, or a pool constructed with 0) it degrades to an inline loop,
/// so callers never need a fallback path.
///
/// Determinism: parallel_for imposes no order on index execution, so
/// callers must write results into disjoint, index-addressed slots — then
/// the merged result is independent of scheduling and identical to a
/// sequential run (see Ed25519::verify_batch for the canonical use).
///
/// Concurrent parallel_for calls from different threads are safe: each call
/// is its own job record and idle workers drain whichever jobs are queued.
/// fn must not throw (workers have nowhere to deliver an exception).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const { return workers_.size(); }

  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool sized to the machine: hardware_concurrency() - 1
  /// workers (the caller participates, so all cores stay busy), 0 on a
  /// single-core host where parallel_for runs inline.
  static ThreadPool& global();

 private:
  struct Job;
  void worker_main();
  /// Claim and run indices of `job` until none remain. Any thread.
  static void run_some(Job& job);

  std::mutex m_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace setchain::util
