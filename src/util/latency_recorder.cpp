#include "util/latency_recorder.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace setchain::util {

namespace {
// Index layout: group g = index / kSubBuckets. Groups 0 and 1 (indices
// 0..63) are exact values; group g >= 2 covers one octave with shift
// h = g - 1 (values [kSubBuckets << h, kSubBuckets << (h+1))). The exact
// region is just the h = 0 octave written out, so one formula rules all
// indices >= kSubBuckets.
constexpr std::size_t kBucketCount =
    (LatencyRecorder::kMaxShift + 2) * LatencyRecorder::kSubBuckets;
}  // namespace

LatencyRecorder::LatencyRecorder() : buckets_(kBucketCount, 0) {}

std::size_t LatencyRecorder::bucket_index(std::uint64_t v) {
  if (v < 2 * kSubBuckets) return static_cast<std::size_t>(v);
  // v >= 64: shift so the mantissa keeps kSubBits bits below the leading one.
  const unsigned h = static_cast<unsigned>(std::bit_width(v)) - 1 - kSubBits;
  if (h > kMaxShift) return kBucketCount - 1;
  const std::uint64_t sub = (v >> h) - kSubBuckets;  // in [0, kSubBuckets)
  return static_cast<std::size_t>((h + 1) * kSubBuckets + sub);
}

std::uint64_t LatencyRecorder::index_bound(std::size_t index) {
  if (index < kSubBuckets) return index;
  const unsigned h = static_cast<unsigned>(index / kSubBuckets) - 1;
  const std::uint64_t sub = index % kSubBuckets;
  return ((sub + kSubBuckets + 1) << h) - 1;  // inclusive upper bound
}

std::uint64_t LatencyRecorder::bucket_bound(std::uint64_t value) {
  return index_bound(bucket_index(value));
}

void LatencyRecorder::record_n(std::uint64_t value, std::uint64_t n) {
  if (n == 0) return;
  buckets_[bucket_index(value)] += n;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  count_ += n;
  sum_ += static_cast<unsigned __int128>(value) * n;
}

void LatencyRecorder::merge(const LatencyRecorder& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyRecorder::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0;
}

double LatencyRecorder::mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t LatencyRecorder::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  if (p == 0.0) return min();
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Never report above the exact max: the top occupied bucket's bound
      // may overshoot the largest sample by the quantization error.
      return std::min(index_bound(i), max_);
    }
  }
  return max_;
}

}  // namespace setchain::util
