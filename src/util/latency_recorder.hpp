#pragma once

#include <cstdint>
#include <vector>

namespace setchain::util {

/// HDR-style log-linear latency histogram: p50/p90/p99/p999 over millions of
/// samples without storing any of them.
///
/// Layout: values below 2^(kSubBits+1) are bucketed exactly; above that,
/// each power of two is split into kSubBuckets linear sub-buckets, so a
/// reported percentile overestimates the true sample by strictly less than
/// 1/kSubBuckets (3.125%) of its value — the classic HDR trade of bounded
/// relative error for O(1) record and a fixed ~10 KiB footprint.
///
/// The recorder is unit-agnostic (the load harness feeds microseconds).
/// record() is O(1); percentile() walks the bucket array; merge() adds two
/// recorders bucket-by-bucket and is exact (associative and commutative —
/// merging per-shard recorders equals recording into one, pinned in tests).
/// Not thread-safe: one recorder per thread, merge at the end.
class LatencyRecorder {
 public:
  static constexpr unsigned kSubBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBits;  // 32
  /// Highest exactly-representable octave shift. Values at or above
  /// kMaxTrackable land in the final bucket (count and max() stay exact,
  /// percentiles saturate at the last bucket's bound).
  static constexpr unsigned kMaxShift = 37;
  static constexpr std::uint64_t kMaxTrackable =
      (kSubBuckets * 2) << kMaxShift;  // ~2^43: > 2 hours in microseconds

  LatencyRecorder();

  void record(std::uint64_t value) { record_n(value, 1); }
  void record_n(std::uint64_t value, std::uint64_t n);

  /// Fold `other` into this recorder. Exact: the result is identical to one
  /// recorder having seen both sample streams.
  void merge(const LatencyRecorder& other);

  void clear();

  std::uint64_t count() const { return count_; }
  /// Exact smallest / largest recorded value (0 when empty).
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
  /// Exact mean (sums are kept outside the buckets).
  double mean() const;

  /// Value v such that at least ceil(p * count) samples are <= v, with
  /// v >= the true rank-th sample and v < sample * (1 + 1/kSubBuckets).
  /// p is clamped to [0, 1]; p == 0 returns min(); empty recorder returns 0.
  std::uint64_t percentile(double p) const;

  /// Upper value bound of the bucket `value` falls into — the quantization
  /// percentile() reports at. Exposed so tests can pin the error contract.
  static std::uint64_t bucket_bound(std::uint64_t value);

  std::size_t bucket_count() const { return buckets_.size(); }

 private:
  static std::size_t bucket_index(std::uint64_t value);
  static std::uint64_t index_bound(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  /// Totals for mean(): sum in 64-bit with saturation guard via 128-bit.
  unsigned __int128 sum_ = 0;
};

}  // namespace setchain::util
