#include "util/buffer_pool.hpp"

#include <cstring>
#include <utility>

namespace setchain::util {

BufferPool::BufferPool(std::size_t max_pooled, std::size_t max_buffer_bytes)
    : max_pooled_(max_pooled), max_buffer_bytes_(max_buffer_bytes) {
  free_.reserve(max_pooled_);
}

codec::Bytes BufferPool::acquire(std::size_t reserve_hint) {
  codec::Bytes out;
  {
    std::lock_guard<std::mutex> lk(m_);
    ++acquires_;
    if (!free_.empty()) {
      out = std::move(free_.back());
      free_.pop_back();
      ++reuses_;
    }
  }
  out.clear();
  if (reserve_hint > 0) out.reserve(reserve_hint);
  return out;
}

void BufferPool::release(codec::Bytes&& b) {
  codec::Bytes buf = std::move(b);
  if constexpr (poison_on_release()) {
    if (!buf.empty()) std::memset(buf.data(), 0xD5, buf.size());
  }
  std::lock_guard<std::mutex> lk(m_);
  ++releases_;
  if (buf.capacity() == 0 || buf.capacity() > max_buffer_bytes_ ||
      free_.size() >= max_pooled_) {
    ++discards_;
    return;  // freed on scope exit
  }
  free_.push_back(std::move(buf));
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lk(m_);
  Stats s;
  s.acquires = acquires_;
  s.reuses = reuses_;
  s.releases = releases_;
  s.discards = discards_;
  s.pooled = free_.size();
  return s;
}

BufferPool& BufferPool::global() {
  static BufferPool pool(/*max_pooled=*/256, /*max_buffer_bytes=*/1u << 20);
  return pool;
}

}  // namespace setchain::util
