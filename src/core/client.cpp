#include "core/client.hpp"

#include <algorithm>
#include <utility>

namespace setchain::core {

SetchainClient::SetchainClient(sim::Simulation& sim, crypto::ProcessId client_id,
                               api::QuorumClient quorum, ElementFactory& factory,
                               metrics::StageRecorder* recorder, Config cfg,
                               std::uint64_t seed)
    : sim_(sim),
      id_(client_id),
      quorum_(std::move(quorum)),
      factory_(factory),
      recorder_(recorder),
      cfg_(cfg),
      rng_(seed ^ (0xC11E47ULL + client_id)) {}

void SetchainClient::start() {
  if (cfg_.rate_el_per_s <= 0) return;
  deadline_ = cfg_.start + cfg_.add_duration;
  // Deterministic phase offset spreads the clients across the interval.
  const sim::Time interval = sim::from_seconds(1.0 / cfg_.rate_el_per_s);
  const sim::Time phase = static_cast<sim::Time>(
      rng_.uniform01() * static_cast<double>(interval));
  sim_.schedule_at(cfg_.start + phase, [this] { add_one(); });
}

void SetchainClient::add_one() {
  if (sim_.now() > deadline_) return;

  const bool make_bad =
      cfg_.invalid_fraction > 0.0 && rng_.chance(cfg_.invalid_fraction);
  Element e = make_bad ? factory_.make_invalid(id_, seq_++) : factory_.make(id_, seq_++);
  const ElementId eid = e.id;
  if (cfg_.created_sink) cfg_.created_sink->insert(eid);

  const api::QuorumClient::AddResult r = quorum_.add(std::move(e));
  if (r.ok) {
    ++added_;
    if (recorder_) recorder_->on_add(eid, sim_.now());
    if (cfg_.accepted_sink && !make_bad) cfg_.accepted_sink->push_back(eid);
  } else {
    ++rejected_;
  }

  const sim::Time interval = sim::from_seconds(1.0 / cfg_.rate_el_per_s);
  const sim::Time next = sim_.now() + interval;
  if (next <= deadline_) sim_.schedule_at(next, [this] { add_one(); });
}

SetchainClient::VerifyResult SetchainClient::verify(const SetchainServer& server,
                                                    ElementId id, const crypto::Pki& pki,
                                                    const SetchainParams& params) {
  VerifyResult out;
  const auto snap = server.get();
  out.in_the_set = snap.the_set->contains(id);
  for (const auto& rec : *snap.history) {
    if (std::binary_search(rec.ids.begin(), rec.ids.end(), id)) {
      out.in_epoch = true;
      out.epoch = rec.number;
      // Count proofs that verify against the epoch hash we recompute
      // ourselves — the client trusts no single server. proofs_for_epoch is
      // bounds-checked, so a Byzantine record numbered 0 (or beyond the
      // proof store) simply yields no proofs.
      for (const auto& p : server.proofs_for_epoch(rec.number)) {
        if (valid_proof(p, rec.hash, pki, params.fidelity)) ++out.valid_proofs;
      }
      break;
    }
  }
  out.committed = out.in_epoch && out.valid_proofs >= params.f + 1;
  return out;
}

}  // namespace setchain::core
