#include "core/compresschain.hpp"

#include "codec/lz77.hpp"

namespace setchain::core {

CompresschainServer::CompresschainServer(ServerContext ctx, crypto::ProcessId id)
    : SetchainServer(std::move(ctx), id),
      collector_(this->ctx_.sim, this->ctx_.params->collector_limit,
                 this->ctx_.params->collector_timeout,
                 [this](Batch&& b) { on_batch_ready(std::move(b)); }) {
  collector_.set_origin(id);
}

bool CompresschainServer::add(Element e) {
  if (is_down()) return false;
  cpu_acquire(params().costs.validate_element);
  if (!valid_element(e, *ctx_.pki, fidelity())) return false;
  if (in_the_set(e.id)) return false;
  the_set_insert(e.id);
  collector_.add_element(std::move(e));
  return true;
}

void CompresschainServer::on_batch_ready(Batch&& batch) {
  if (is_down()) return;  // dying process: the batch never leaves the box
  const std::uint64_t raw_bytes = batch.wire_size();
  cpu_acquire(params().costs.compress_cost(raw_bytes));

  std::vector<ElementId> ids;
  if (ctx_.register_tx_elements) {
    ids.reserve(batch.elements.size());
    for (const auto& e : batch.elements) ids.push_back(e.id);
  }

  ledger::Transaction tx;
  tx.kind = ledger::TxKind::kCompressedBatch;
  if (fidelity() == Fidelity::kFull) {
    codec::Bytes compressed;
    compressed_size(batch, fidelity(), params().calibrated_compress_ratio, &compressed);
    tx.data = std::move(compressed);
    tx.wire_size = static_cast<std::uint32_t>(tx.data.size());
  } else {
    tx.wire_size = static_cast<std::uint32_t>(
        compressed_size(batch, fidelity(), params().calibrated_compress_ratio));
    tx.app = std::make_shared<Batch>(std::move(batch));
  }
  const ledger::TxIdx idx = ctx_.ledger->append(id_, std::move(tx));
  if (ctx_.register_tx_elements) ctx_.register_tx_elements(idx, ids);
  ++batches_appended_;
}

void CompresschainServer::on_crash(bool wipe) {
  (void)wipe;  // all algorithm-specific state here is volatile
  collector_.clear();
}

void CompresschainServer::on_new_block(const ledger::Block& b) {
  if (is_down()) return;
  sim::Time cost = 0;
  if (params().validate) {
    const auto& table = ctx_.ledger->txs();
    for (const auto idx : b.txs) {
      const auto& tx = table.get(idx);
      if (tx.kind != ledger::TxKind::kCompressedBatch &&
          fidelity() == Fidelity::kCalibrated) {
        cost += params().costs.check_tx_cost(tx.wire_size);
        continue;
      }
      // Decompression over the (approximate) raw size plus per-entry checks.
      std::uint64_t raw = tx.wire_size * 3;
      std::uint64_t n_elements = 0;
      std::uint64_t n_proofs = 0;
      if (const auto* batch = tx.app_as<Batch>()) {
        raw = batch->wire_size();
        n_elements = batch->elements.size();
        n_proofs = batch->proofs.size();
      } else if (fidelity() == Fidelity::kFull) {
        n_elements = raw / 450;  // pre-parse estimate; real work happens below
      }
      cost += params().costs.decompress_cost(raw);
      cost += static_cast<sim::Time>(n_elements) * params().costs.validate_element;
      // Piggybacked proof signatures go through the Ed25519 batch path:
      // one amortized batch cost per compressed batch.
      cost += params().costs.verify_batch_cost(n_proofs);
    }
  }
  const sim::Time done = cpu_acquire(cost);
  if (ctx_.sim) {
    ctx_.sim->schedule_at(done, [this, &b, inc = incarnation()] {
      if (inc == incarnation()) process_block(b);
    });
  } else {
    process_block(b);
  }
}

void CompresschainServer::process_block(const ledger::Block& b) {
  note_block_applied(b.height);
  const auto& table = ctx_.ledger->txs();
  for (const auto idx : b.txs) {
    const auto& tx = table.get(idx);
    if (fidelity() == Fidelity::kFull) {
      const auto raw = codec::lz77_decompress(tx.data);
      if (!raw) continue;  // not a compressed batch (Byzantine garbage)
      const auto batch = parse_batch(*raw);
      if (!batch) continue;
      process_batch(*batch, b);
    } else {
      const auto* batch = tx.app_as<Batch>();
      if (tx.kind != ledger::TxKind::kCompressedBatch || !batch) continue;
      process_batch(*batch, b);
    }
  }
}

void CompresschainServer::process_batch(const Batch& batch, const ledger::Block& b) {
  // One Ed25519 batch check covers every piggybacked proof signature.
  absorb_proofs(batch.proofs, b.first_commit_at);

  if (ctx_.recorder) {
    for (const auto& e : batch.elements) ctx_.recorder->on_ledger(e.id, b.first_commit_at);
  }

  // "Compresschain Light" (Fig. 2 left) skips element validation; epochs are
  // still formed from the batch content (all servers correct by assumption).
  std::vector<Element> g;
  if (params().validate) {
    g = extract_new_valid(batch.elements);
  } else {
    g.reserve(batch.elements.size());
    for (const auto& e : batch.elements) {
      if (!in_history(e.id)) g.push_back(e);
    }
  }

  std::uint64_t g_bytes = 0;
  for (const auto& e : g) {
    the_set_insert(e.id);
    g_bytes += e.wire_size;
  }
  if (!g.empty()) {
    cpu_acquire(params().costs.hash_cost(g_bytes) + params().costs.sign);
    EpochProof p = consolidate(g, b.first_commit_at);
    if (!proof_already_published(p.epoch)) collector_.add_proof(std::move(p));
  }
}

}  // namespace setchain::core
