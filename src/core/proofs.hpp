#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "codec/byte_io.hpp"
#include "core/config.hpp"
#include "core/element.hpp"
#include "crypto/pki.hpp"
#include "crypto/sha512.hpp"

namespace setchain::core {

using EpochHash = std::array<std::uint8_t, 64>;

/// Epoch-proof p_v(i) = Sign_v(Hash(i, history[i])) — the paper's mechanism
/// letting a light client trust an epoch after f+1 consistent proofs
/// (§2, "Setchain Epoch-proofs"). Wire size is exactly 139 bytes, matching
/// the measured length in §4.
struct EpochProof {
  std::uint64_t epoch = 0;
  crypto::ProcessId server = 0;
  EpochHash epoch_hash{};
  crypto::Ed25519::Signature sig{};
  bool valid_flag = true;  ///< calibrated-fidelity validity

  bool operator==(const EpochProof& o) const {
    return epoch == o.epoch && server == o.server;
  }
};

constexpr std::uint32_t kEpochProofWireSize = 139;
constexpr std::uint8_t kEpochProofTag = 0x02;

/// Canonical hash of an epoch: SHA-512 over the epoch number and the
/// (id, digest) pairs of its elements sorted by id. Sorting gives all
/// correct servers a content-identical hash regardless of processing order.
/// Calibrated fidelity derives a deterministic placeholder from the same
/// inputs without SHA cost on the host.
EpochHash epoch_hash(std::uint64_t epoch,
                     const std::vector<std::pair<ElementId, std::uint64_t>>& id_digests,
                     Fidelity fidelity);

void serialize_epoch_proof(codec::Writer& w, const EpochProof& p);
std::optional<EpochProof> parse_epoch_proof(codec::Reader& r);

EpochProof make_epoch_proof(const crypto::Pki& pki, crypto::ProcessId server,
                            std::uint64_t epoch, const EpochHash& hash,
                            Fidelity fidelity);

/// Result of an Ed25519 check performed ahead of time through the batch
/// path (Pki::verify_batch). kUnchecked means "not pre-verified": the
/// validator runs the scalar check itself.
enum class SigCheck : std::uint8_t { kUnchecked, kValid, kInvalid };

/// The paper's valid_proof(j, p, w, history[j]): the proof must reference an
/// existing epoch whose locally computed hash matches, with a valid server
/// signature over it. `presig` carries a batch-verified signature verdict so
/// hot paths that already checked a whole block's signatures in one
/// multi-scalar multiplication do not re-verify one by one.
bool valid_proof(const EpochProof& p, const EpochHash& expected,
                 const crypto::Pki& pki, Fidelity fidelity,
                 SigCheck presig = SigCheck::kUnchecked);

/// Hash-batch <h, s, v> (Hashchain): fixed-size stand-in for a batch on the
/// ledger. Also 139 bytes on the wire, as measured in §4.
struct HashBatchMsg {
  EpochHash hash{};  ///< Hash(batch)
  crypto::ProcessId server = 0;
  crypto::Ed25519::Signature sig{};
  bool valid_flag = true;
};

constexpr std::uint32_t kHashBatchWireSize = 139;
constexpr std::uint8_t kHashBatchTag = 0x03;

void serialize_hash_batch(codec::Writer& w, const HashBatchMsg& hb);
std::optional<HashBatchMsg> parse_hash_batch(codec::Reader& r);

HashBatchMsg make_hash_batch(const crypto::Pki& pki, crypto::ProcessId server,
                             const EpochHash& h, Fidelity fidelity);

/// valid_hash(h, s_w, w): signature of w over h. `presig` as in valid_proof.
bool valid_hash_batch(const HashBatchMsg& hb, const crypto::Pki& pki, Fidelity fidelity,
                      SigCheck presig = SigCheck::kUnchecked);

/// Batch-verify the signatures of a block's worth of epoch-proofs with one
/// Ed25519 batch check. Returns kUnchecked everywhere when batching cannot
/// help (calibrated fidelity, or fewer than two proofs), so callers always
/// feed the result straight into valid_proof.
std::vector<SigCheck> batch_check_proof_sigs(const std::vector<EpochProof>& ps,
                                             const crypto::Pki& pki, Fidelity fidelity);

/// Same for hash-batch announcements.
std::vector<SigCheck> batch_check_hash_batch_sigs(const std::vector<HashBatchMsg>& hbs,
                                                  const crypto::Pki& pki,
                                                  Fidelity fidelity);

}  // namespace setchain::core
