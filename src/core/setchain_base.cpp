#include "core/setchain_base.hpp"

#include <algorithm>

namespace setchain::core {

SetchainServer::SetchainServer(ServerContext ctx, crypto::ProcessId id)
    : ctx_(std::move(ctx)), id_(id) {}

SetchainServer::Snapshot SetchainServer::get() const {
  return Snapshot{&the_set_, &history_, epoch_, &proofs_};
}

const std::vector<EpochProof>& SetchainServer::proofs_for_epoch(
    std::uint64_t epoch_number) const {
  static const std::vector<EpochProof> kNoProofs;
  if (down_) return kNoProofs;  // unreachable process serves nothing
  if (epoch_number == 0 || epoch_number > proofs_.size()) return kNoProofs;
  return proofs_[epoch_number - 1];
}

void SetchainServer::crash(bool wipe) {
  if (down_) return;
  down_ = true;
  ++crashes_;
  ++incarnation_;  // kill CPU-queued continuations of the previous life
  if (wipe) {
    // Parked pending proofs are derived purely from blocks <= applied_height,
    // so they survive a retained crash with the rest of the persisted state;
    // only a wipe loses them (and the replay from genesis re-parks them).
    pending_proofs_.clear();
    applied_height_ = 0;
    // The replay must not re-append proof transactions for epochs the
    // previous life consolidated: most were already published (duplicates
    // would bloat the ledger), and the few still buffered in the collector
    // at crash time died with it — for those this server simply never
    // contributes a proof, which the f bound absorbs (P8 needs f+1 of n).
    // max(): a second wipe mid-recovery must not lower the boundary an
    // earlier life established.
    republish_boundary_ = std::max(republish_boundary_, epoch_);
    the_set_.clear();
    the_set_count_ = 0;
    history_members_.clear();
    history_.clear();
    proofs_.clear();
    proof_servers_.clear();
    epoch_ = 0;
  }
  on_crash(wipe);
}

void SetchainServer::restart() {
  if (!down_) return;
  down_ = false;
  on_restart();
}

bool SetchainServer::epoch_proven(std::uint64_t epoch_number) const {
  if (down_) return false;  // unreachable process answers nothing
  if (epoch_number == 0 || epoch_number > proof_servers_.size()) return false;
  return proof_servers_[epoch_number - 1].size() >= params().f + 1;
}

bool SetchainServer::in_the_set(ElementId id) const {
  if (params().lean_state) return false;
  return the_set_.contains(id);
}

bool SetchainServer::the_set_insert(ElementId id) {
  if (params().lean_state) {
    ++the_set_count_;
    return true;
  }
  const bool inserted = the_set_.insert(id).second;
  if (inserted) ++the_set_count_;
  return inserted;
}

bool SetchainServer::in_history(ElementId id) const {
  if (params().lean_state) return false;
  return history_members_.contains(id);
}

std::vector<Element> SetchainServer::extract_new_valid(
    const std::vector<Element>& es) const {
  const std::vector<bool> valid = valid_elements(es, *ctx_.pki, fidelity());
  std::vector<Element> g;
  g.reserve(es.size());
  std::unordered_set<ElementId> in_g;
  for (std::size_t i = 0; i < es.size(); ++i) {
    const Element& e = es[i];
    if (!valid[i]) continue;
    if (in_history(e.id)) continue;
    if (!params().lean_state && !in_g.insert(e.id).second) continue;
    g.push_back(e);
  }
  return g;
}

EpochProof SetchainServer::consolidate(const std::vector<Element>& g,
                                       sim::Time ledger_time) {
  const std::uint64_t number = ++epoch_;

  EpochRecord rec;
  rec.number = number;
  rec.count = g.size();
  std::vector<std::pair<ElementId, std::uint64_t>> id_digests;
  id_digests.reserve(g.size());
  for (const auto& e : g) {
    rec.bytes += e.wire_size;
    id_digests.emplace_back(e.id, element_digest(e, fidelity()));
  }
  std::sort(id_digests.begin(), id_digests.end());
  rec.hash = epoch_hash(number, id_digests, fidelity());
  if (!params().lean_state) {
    rec.ids.reserve(g.size());
    for (const auto& [id, _] : id_digests) rec.ids.push_back(id);
    for (const auto id : rec.ids) history_members_.insert(id);
  }
  history_.push_back(std::move(rec));
  proofs_.emplace_back();
  proof_servers_.emplace_back();

  if (ctx_.recorder) {
    ctx_.recorder->on_epoch_consolidated(number, history_.back().count,
                                         history_.back().ids, ledger_time);
  }
  if (ctx_.on_epoch) {
    // Hand elements over in canonical (id-sorted) order, matching rec.ids.
    std::vector<Element> ordered = g;
    std::sort(ordered.begin(), ordered.end(),
              [](const Element& a, const Element& b) { return a.id < b.id; });
    ctx_.on_epoch(history_.back(), ordered);
  }

  EpochProof p = make_epoch_proof(*ctx_.pki, id_, number, history_.back().hash,
                                  fidelity());
  if (byz_.corrupt_proofs) {
    // Sign garbage: flip the hash (and re-sign it in full fidelity so the
    // signature itself is fine but binds the wrong content).
    EpochHash wrong = history_.back().hash;
    wrong[0] ^= 0xFF;
    p = make_epoch_proof(*ctx_.pki, id_, number, wrong, fidelity());
  }

  try_flush_pending_proofs(ledger_time);
  return p;
}

void SetchainServer::absorb_proof(const EpochProof& p, sim::Time ledger_time,
                                  SigCheck presig) {
  if (p.epoch == 0) return;
  if (p.epoch > epoch_) {
    // Not consolidated locally yet: park it (bounded against Byzantine
    // epoch-number bombs).
    if (p.epoch > epoch_ + kMaxPendingEpochAhead) return;
    auto& bucket = pending_proofs_[p.epoch];
    if (bucket.size() < 2 * params().n) bucket.push_back(PendingProof{p, presig});
    return;
  }
  const EpochRecord& rec = history_[p.epoch - 1];
  if (!valid_proof(p, rec.hash, *ctx_.pki, fidelity(), presig)) return;
  auto& servers = proof_servers_[p.epoch - 1];
  if (!servers.insert(p.server).second) return;  // duplicate
  proofs_[p.epoch - 1].push_back(p);
  if (ctx_.recorder) ctx_.recorder->on_proof_on_ledger(p.epoch, p.server, ledger_time);
}

void SetchainServer::absorb_proofs(const std::vector<EpochProof>& ps,
                                   sim::Time ledger_time) {
  const std::vector<SigCheck> sigs = batch_check_proof_sigs(ps, *ctx_.pki, fidelity());
  for (std::size_t i = 0; i < ps.size(); ++i) absorb_proof(ps[i], ledger_time, sigs[i]);
}

void SetchainServer::try_flush_pending_proofs(sim::Time ledger_time) {
  auto it = pending_proofs_.find(epoch_);
  if (it == pending_proofs_.end()) return;
  const auto bucket = std::move(it->second);
  pending_proofs_.erase(it);
  for (const auto& pp : bucket) absorb_proof(pp.proof, ledger_time, pp.presig);
}

sim::Time SetchainServer::cpu_acquire(sim::Time cost) {
  if (!ctx_.cpus || ctx_.cpus->empty()) return now() + cost;
  return (*ctx_.cpus)[id_].acquire(now(), cost);
}

sim::Time SetchainServer::now() const { return ctx_.sim ? ctx_.sim->now() : 0; }

}  // namespace setchain::core
