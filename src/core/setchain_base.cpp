#include "core/setchain_base.hpp"

#include <algorithm>

namespace setchain::core {

SetchainServer::SetchainServer(ServerContext ctx, crypto::ProcessId id)
    : ctx_(std::move(ctx)), id_(id) {}

SetchainServer::Snapshot SetchainServer::get() const {
  return Snapshot{&the_set_, &history_, epoch_, &proofs_};
}

const std::vector<EpochProof>& SetchainServer::proofs_for_epoch(
    std::uint64_t epoch_number) const {
  static const std::vector<EpochProof> kNoProofs;
  if (down_) return kNoProofs;  // unreachable process serves nothing
  if (epoch_number == 0 || epoch_number > proofs_.size()) return kNoProofs;
  return proofs_[epoch_number - 1];
}

void SetchainServer::crash(bool wipe) {
  if (down_) return;
  down_ = true;
  ++crashes_;
  ++incarnation_;  // kill CPU-queued continuations of the previous life
  if (wipe) {
    // Parked pending proofs are derived purely from blocks <= applied_height,
    // so they survive a retained crash with the rest of the persisted state;
    // only a wipe loses them (and the replay from genesis re-parks them).
    pending_proofs_.clear();
    applied_height_ = 0;
    // The replay must not re-append proof transactions for epochs the
    // previous life consolidated: most were already published (duplicates
    // would bloat the ledger), and the few still buffered in the collector
    // at crash time died with it — for those this server simply never
    // contributes a proof, which the f bound absorbs (P8 needs f+1 of n).
    // max(): a second wipe mid-recovery must not lower the boundary an
    // earlier life established.
    republish_boundary_ = std::max(republish_boundary_, epoch_);
    the_set_.clear();
    the_set_count_ = 0;
    history_members_.clear();
    history_.clear();
    proofs_.clear();
    proof_servers_.clear();
    epoch_ = 0;
  }
  on_crash(wipe);
}

void SetchainServer::restart() {
  if (!down_) return;
  down_ = false;
  on_restart();
}

bool SetchainServer::epoch_proven(std::uint64_t epoch_number) const {
  if (down_) return false;  // unreachable process answers nothing
  if (epoch_number == 0 || epoch_number > proof_servers_.size()) return false;
  return proof_servers_[epoch_number - 1].size() >= params().f + 1;
}

bool SetchainServer::in_the_set(ElementId id) const {
  if (params().lean_state) return false;
  return the_set_.contains(id);
}

bool SetchainServer::the_set_insert(ElementId id) {
  if (params().lean_state) {
    ++the_set_count_;
    return true;
  }
  const bool inserted = the_set_.insert(id).second;
  if (inserted) ++the_set_count_;
  return inserted;
}

bool SetchainServer::in_history(ElementId id) const {
  if (params().lean_state) return false;
  return history_members_.contains(id);
}

std::vector<Element> SetchainServer::extract_new_valid(
    const std::vector<Element>& es) const {
  const std::vector<bool> valid = valid_elements(es, *ctx_.pki, fidelity());
  std::vector<Element> g;
  g.reserve(es.size());
  std::unordered_set<ElementId> in_g;
  for (std::size_t i = 0; i < es.size(); ++i) {
    const Element& e = es[i];
    if (!valid[i]) continue;
    if (in_history(e.id)) continue;
    if (!params().lean_state && !in_g.insert(e.id).second) continue;
    g.push_back(e);
  }
  return g;
}

EpochProof SetchainServer::consolidate(const std::vector<Element>& g,
                                       sim::Time ledger_time) {
  const std::uint64_t number = ++epoch_;

  EpochRecord rec;
  rec.number = number;
  rec.count = g.size();
  std::vector<std::pair<ElementId, std::uint64_t>> id_digests;
  id_digests.reserve(g.size());
  for (const auto& e : g) {
    rec.bytes += e.wire_size;
    id_digests.emplace_back(e.id, element_digest(e, fidelity()));
  }
  std::sort(id_digests.begin(), id_digests.end());
  rec.hash = epoch_hash(number, id_digests, fidelity());
  if (!params().lean_state) {
    rec.ids.reserve(g.size());
    for (const auto& [id, _] : id_digests) rec.ids.push_back(id);
    for (const auto id : rec.ids) history_members_.insert(id);
  }
  history_.push_back(std::move(rec));
  proofs_.emplace_back();
  proof_servers_.emplace_back();

  if (ctx_.recorder) {
    ctx_.recorder->on_epoch_consolidated(number, history_.back().count,
                                         history_.back().ids, ledger_time);
  }
  if (ctx_.on_epoch) {
    // Hand elements over in canonical (id-sorted) order, matching rec.ids.
    std::vector<Element> ordered = g;
    std::sort(ordered.begin(), ordered.end(),
              [](const Element& a, const Element& b) { return a.id < b.id; });
    ctx_.on_epoch(history_.back(), ordered);
  }

  EpochProof p = make_epoch_proof(*ctx_.pki, id_, number, history_.back().hash,
                                  fidelity());
  if (byz_.corrupt_proofs) {
    // Sign garbage: flip the hash (and re-sign it in full fidelity so the
    // signature itself is fine but binds the wrong content).
    EpochHash wrong = history_.back().hash;
    wrong[0] ^= 0xFF;
    p = make_epoch_proof(*ctx_.pki, id_, number, wrong, fidelity());
  }

  try_flush_pending_proofs(ledger_time);
  return p;
}

void SetchainServer::absorb_proof(const EpochProof& p, sim::Time ledger_time,
                                  SigCheck presig) {
  if (p.epoch == 0) return;
  if (p.epoch > epoch_) {
    // Not consolidated locally yet: park it (bounded against Byzantine
    // epoch-number bombs).
    if (p.epoch > epoch_ + kMaxPendingEpochAhead) return;
    auto& bucket = pending_proofs_[p.epoch];
    if (bucket.size() < 2 * params().n) bucket.push_back(PendingProof{p, presig});
    return;
  }
  const EpochRecord& rec = history_[p.epoch - 1];
  if (!valid_proof(p, rec.hash, *ctx_.pki, fidelity(), presig)) return;
  auto& servers = proof_servers_[p.epoch - 1];
  if (!servers.insert(p.server).second) return;  // duplicate
  proofs_[p.epoch - 1].push_back(p);
  if (ctx_.recorder) ctx_.recorder->on_proof_on_ledger(p.epoch, p.server, ledger_time);
}

void SetchainServer::absorb_proofs(const std::vector<EpochProof>& ps,
                                   sim::Time ledger_time) {
  const std::vector<SigCheck> sigs = batch_check_proof_sigs(ps, *ctx_.pki, fidelity());
  for (std::size_t i = 0; i < ps.size(); ++i) absorb_proof(ps[i], ledger_time, sigs[i]);
}

void SetchainServer::try_flush_pending_proofs(sim::Time ledger_time) {
  auto it = pending_proofs_.find(epoch_);
  if (it == pending_proofs_.end()) return;
  const auto bucket = std::move(it->second);
  pending_proofs_.erase(it);
  for (const auto& pp : bucket) absorb_proof(pp.proof, ledger_time, pp.presig);
}

namespace {
constexpr std::uint8_t kServerStateVersion = 1;
}

void SetchainServer::serialize_state(codec::Writer& w) const {
  w.u8(kServerStateVersion);
  w.varint(epoch_);
  w.varint(applied_height_);

  w.varint(history_.size());
  for (const EpochRecord& rec : history_) {
    w.varint(rec.number);
    w.varint(rec.count);
    w.varint(rec.bytes);
    w.bytes(codec::ByteView(rec.hash.data(), rec.hash.size()));
    w.varint(rec.ids.size());
    // ids are sorted ascending: delta-encode so dense id ranges stay small.
    ElementId prev = 0;
    for (ElementId id : rec.ids) {
      w.varint(id - prev);
      prev = id;
    }
  }

  for (const auto& bucket : proofs_) {
    w.varint(bucket.size());
    for (const EpochProof& p : bucket) serialize_epoch_proof(w, p);
  }

  w.varint(pending_proofs_.size());
  for (const auto& [epoch_number, bucket] : pending_proofs_) {
    w.varint(epoch_number);
    w.varint(bucket.size());
    // The batch-verified presig verdict is dropped: on restore the proofs
    // re-verify through the normal scalar path (correct, just slower once).
    for (const PendingProof& pp : bucket) serialize_epoch_proof(w, pp.proof);
  }

  serialize_derived(w);
}

bool SetchainServer::restore_state(codec::Reader& r) {
  const auto version = r.u8();
  if (!version || *version != kServerStateVersion) return false;
  const auto epoch = r.varint();
  const auto applied = r.varint();
  const auto history_count = r.varint();
  if (!epoch || !applied || !history_count) return false;

  the_set_.clear();
  the_set_count_ = 0;
  history_members_.clear();
  history_.clear();
  proofs_.clear();
  proof_servers_.clear();
  pending_proofs_.clear();
  epoch_ = *epoch;
  applied_height_ = *applied;

  history_.reserve(static_cast<std::size_t>(*history_count));
  for (std::uint64_t i = 0; i < *history_count; ++i) {
    EpochRecord rec;
    const auto number = r.varint();
    const auto count = r.varint();
    const auto bytes = r.varint();
    const auto hash = r.bytes(rec.hash.size());
    const auto ids_count = r.varint();
    if (!number || !count || !bytes || !hash || !ids_count) return false;
    rec.number = *number;
    rec.count = *count;
    rec.bytes = *bytes;
    std::memcpy(rec.hash.data(), hash->data(), rec.hash.size());
    rec.ids.reserve(static_cast<std::size_t>(*ids_count));
    ElementId prev = 0;
    for (std::uint64_t k = 0; k < *ids_count; ++k) {
      const auto delta = r.varint();
      if (!delta) return false;
      prev += *delta;
      rec.ids.push_back(prev);
    }
    // the_set restores as exactly the consolidated membership: elements
    // add()ed but not yet epoch'd at snapshot time were volatile and are
    // re-added by clients (in_history dedup makes that idempotent).
    if (params().lean_state) {
      the_set_count_ += rec.count;
    } else {
      for (ElementId id : rec.ids) {
        history_members_.insert(id);
        if (the_set_.insert(id).second) ++the_set_count_;
      }
    }
    history_.push_back(std::move(rec));
  }
  if (history_.size() != epoch_) return false;

  proofs_.resize(history_.size());
  proof_servers_.resize(history_.size());
  for (std::size_t i = 0; i < history_.size(); ++i) {
    const auto count = r.varint();
    if (!count) return false;
    for (std::uint64_t k = 0; k < *count; ++k) {
      // serialize_epoch_proof emits the frame tag; consume it before parsing.
      const auto tag = r.u8();
      if (!tag || *tag != kEpochProofTag) return false;
      auto p = parse_epoch_proof(r);
      if (!p) return false;
      if (proof_servers_[i].insert(p->server).second) proofs_[i].push_back(*p);
    }
  }

  const auto pending_count = r.varint();
  if (!pending_count) return false;
  for (std::uint64_t i = 0; i < *pending_count; ++i) {
    const auto epoch_number = r.varint();
    const auto count = r.varint();
    if (!epoch_number || !count) return false;
    auto& bucket = pending_proofs_[*epoch_number];
    for (std::uint64_t k = 0; k < *count; ++k) {
      const auto tag = r.u8();
      if (!tag || *tag != kEpochProofTag) return false;
      auto p = parse_epoch_proof(r);
      if (!p) return false;
      bucket.push_back(PendingProof{*p, SigCheck::kUnchecked});
    }
  }

  // The WAL-gap replay behind this restore re-consolidates epochs past the
  // snapshot and must not re-publish proofs for anything at or below it —
  // the previous life already put those on the ledger.
  republish_boundary_ = std::max(republish_boundary_, epoch_);

  return restore_derived(r);
}

sim::Time SetchainServer::cpu_acquire(sim::Time cost) {
  if (!ctx_.cpus || ctx_.cpus->empty()) return now() + cost;
  return (*ctx_.cpus)[id_].acquire(now(), cost);
}

sim::Time SetchainServer::now() const { return ctx_.sim ? ctx_.sim->now() : 0; }

}  // namespace setchain::core
