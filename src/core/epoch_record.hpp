#pragma once

#include <cstdint>
#include <vector>

#include "core/element.hpp"
#include "core/proofs.hpp"

namespace setchain::core {

/// One consolidated epoch as kept in `history`. Lives in its own light
/// header so the client-facing api layer can speak in epochs without
/// pulling in the server/simulation stack.
struct EpochRecord {
  std::uint64_t number = 0;
  std::vector<ElementId> ids;  ///< sorted; empty under lean_state
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  EpochHash hash{};
};

}  // namespace setchain::core
