#include "core/collector.hpp"

namespace setchain::core {

Collector::Collector(sim::Simulation* sim, std::size_t limit, sim::Time timeout,
                     std::function<void(Batch&&)> on_ready)
    : sim_(sim), limit_(limit), timeout_(timeout), on_ready_(std::move(on_ready)) {}

void Collector::add_element(Element e) {
  batch_.elements.push_back(std::move(e));
  note_added();
}

void Collector::add_proof(EpochProof p) {
  batch_.proofs.push_back(std::move(p));
  note_added();
}

void Collector::note_added() {
  if (batch_.entry_count() >= limit_) {
    emit();
    return;
  }
  if (batch_.entry_count() == 1 && timeout_ > 0 && sim_) {
    // First entry of a fresh batch: arm the flush timer.
    timer_.cancel();
    timer_ = sim_->schedule_in(timeout_, [this] { flush(); });
  }
}

void Collector::flush() {
  if (batch_.empty()) return;
  emit();
}

void Collector::clear() {
  timer_.cancel();
  batch_ = Batch{};
}

void Collector::emit() {
  timer_.cancel();
  Batch out = std::move(batch_);
  batch_ = Batch{};
  out.uid = (static_cast<std::uint64_t>(origin_) << 40) | next_uid_++;
  out.origin = origin_;
  ++batches_;
  on_ready_(std::move(out));
}

}  // namespace setchain::core
