#pragma once

#include "core/setchain_base.hpp"

namespace setchain::core {

/// Algorithm Vanilla (Appendix B): every element is appended to the ledger
/// as its own transaction; the valid elements of each block form one epoch;
/// epoch-proofs are appended directly as ledger transactions. Throughput and
/// latency are those of the underlying ledger — the baseline the other two
/// algorithms improve on.
class VanillaServer final : public SetchainServer {
 public:
  VanillaServer(ServerContext ctx, crypto::ProcessId id);

  bool add(Element e) override;

  /// L.new_block(B) / ABCI FinalizeBlock handler (wire via
  /// ledger->on_new_block).
  void on_new_block(const ledger::Block& b);

  std::uint64_t elements_appended() const { return elements_appended_; }

 private:
  void process_block(const ledger::Block& b);
  void append_proof(const EpochProof& p);

  std::uint64_t elements_appended_ = 0;
};

}  // namespace setchain::core
