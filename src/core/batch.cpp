#include "core/batch.hpp"

#include "codec/lz77.hpp"
#include "sim/rng.hpp"

namespace setchain::core {

codec::Bytes serialize_batch(const Batch& b) {
  codec::Writer w;
  w.varint(b.entry_count());
  for (const auto& e : b.elements) serialize_element(w, e);
  for (const auto& p : b.proofs) serialize_epoch_proof(w, p);
  return w.take();
}

std::optional<Batch> parse_batch(codec::ByteView bytes) {
  codec::Reader r(bytes);
  const auto count = r.varint();
  if (!count) return std::nullopt;
  if (*count > 1'000'000) return std::nullopt;  // Byzantine size bomb guard

  Batch b;
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto tag = r.u8();
    if (!tag) return std::nullopt;
    if (*tag == kElementTag) {
      auto e = parse_element(r);
      if (!e) return std::nullopt;
      b.elements.push_back(std::move(*e));
    } else if (*tag == kEpochProofTag) {
      auto p = parse_epoch_proof(r);
      if (!p) return std::nullopt;
      b.proofs.push_back(*p);
    } else {
      return std::nullopt;
    }
  }
  if (!r.done()) return std::nullopt;  // trailing garbage
  return b;
}

EpochHash batch_hash(const Batch& b, Fidelity fidelity) {
  if (fidelity == Fidelity::kFull) {
    return crypto::Sha512::hash(serialize_batch(b));
  }
  // Calibrated: mix the content identifiers so equal content gives equal
  // hash and different batches collide with negligible probability.
  std::uint64_t acc = 0xBA7C4ULL;
  for (const auto& e : b.elements) {
    std::uint64_t s = acc ^ e.id;
    acc = sim::splitmix64(s);
  }
  for (const auto& p : b.proofs) {
    std::uint64_t s = acc ^ (p.epoch * 0x100003ULL + p.server);
    acc = sim::splitmix64(s);
  }
  EpochHash out{};
  std::uint64_t s = acc;
  for (std::size_t i = 0; i < out.size(); i += 8) {
    const std::uint64_t v = sim::splitmix64(s);
    for (std::size_t j = 0; j < 8; ++j) out[i + j] = static_cast<std::uint8_t>(v >> (8 * j));
  }
  return out;
}

std::uint64_t compressed_size(const Batch& b, Fidelity fidelity, double calibrated_ratio,
                              codec::Bytes* out_compressed) {
  if (fidelity == Fidelity::kFull) {
    const codec::Bytes raw = serialize_batch(b);
    codec::Bytes comp = codec::lz77_compress(raw);
    const std::uint64_t size = comp.size();
    if (out_compressed) *out_compressed = std::move(comp);
    return size;
  }
  const double ratio = calibrated_ratio > 0.1 ? calibrated_ratio : 1.0;
  return 16 + static_cast<std::uint64_t>(static_cast<double>(b.wire_size()) / ratio);
}

}  // namespace setchain::core
