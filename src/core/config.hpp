#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"

namespace setchain::core {

/// Fidelity of the payload/crypto plumbing.
///
/// * kFull: elements carry real payload bytes, batches are really
///   serialized/compressed/hashed, and every signature is a real Ed25519
///   operation. Used by unit/integration tests and the examples.
/// * kCalibrated: element payloads stay virtual (sizes + deterministic
///   seeds), compression uses the ratio measured from the real codec at
///   startup, hashes/signatures are deterministic placeholders, and crypto
///   CPU time is charged to the simulated cores via CostModel. Used by the
///   high-rate benchmark sweeps (up to 150k el/s), where materializing
///   every byte would dominate host time without changing any result the
///   paper reports. See DESIGN.md, substitution 5.
enum class Fidelity : std::uint8_t { kFull, kCalibrated };

/// Simulated CPU costs of the primitives, calibrated to the paper's testbed
/// (Xeon E-2186G, Go crypto). These drive the BusyResource occupancy of each
/// node's CPU in calibrated runs; in full-fidelity runs the real operations
/// run too but the *simulated* time is still taken from here (host speed
/// must not leak into simulated results).
struct CostModel {
  sim::Time validate_element = sim::from_micros(4);  ///< parse + syntactic checks
  sim::Time verify_signature = sim::from_micros(100);
  sim::Time sign = sim::from_micros(30);
  double hash_ns_per_byte = 2.0;
  double compress_ns_per_byte = 15.0;
  double decompress_ns_per_byte = 3.0;
  sim::Time check_tx_base = sim::from_micros(1);
  double check_tx_ns_per_byte = 0.5;

  /// Per-request overhead of the Hashchain batch-exchange service, charged
  /// at both the serving and the requesting server. Calibrated so the
  /// prototype behaviour the paper reports emerges: Hashchain saturates
  /// around 10k el/s with collector 100 (900 requests/s system-wide) and
  /// "the most likely cause of this limitation is the hash-reversal
  /// process" (§4.1) — the Light variant without the service runs ~6x
  /// faster. See DESIGN.md (ablations) and EXPERIMENTS.md.
  sim::Time request_batch_overhead = sim::from_millis(6);

  /// Batched Ed25519 verification (random linear combination + one
  /// multi-scalar multiplication): a fixed transcript/setup cost plus a
  /// per-signature cost well below a standalone verify, because the
  /// doubling chain is shared across the batch. Calibrated against
  /// bench/ed25519_batch_bench (batch-64 runs ~3x the per-signature
  /// throughput of scalar verify on the reference host).
  sim::Time verify_batch_base = sim::from_micros(40);
  sim::Time verify_batch_per_sig = sim::from_micros(35);

  sim::Time hash_cost(std::uint64_t bytes) const {
    return static_cast<sim::Time>(hash_ns_per_byte * static_cast<double>(bytes));
  }
  sim::Time compress_cost(std::uint64_t bytes) const {
    return static_cast<sim::Time>(compress_ns_per_byte * static_cast<double>(bytes));
  }
  sim::Time decompress_cost(std::uint64_t bytes) const {
    return static_cast<sim::Time>(decompress_ns_per_byte * static_cast<double>(bytes));
  }
  sim::Time check_tx_cost(std::uint64_t bytes) const {
    return check_tx_base +
           static_cast<sim::Time>(check_tx_ns_per_byte * static_cast<double>(bytes));
  }
  /// CPU time to verify `n` signatures through the batch path. A single
  /// signature takes the scalar route (the batch setup would only add
  /// overhead), and the batched estimate is clamped by n standalone
  /// verifies so the model stays monotone.
  sim::Time verify_batch_cost(std::uint64_t n) const {
    if (n == 0) return 0;
    if (n == 1) return verify_signature;
    const sim::Time batched =
        verify_batch_base + static_cast<sim::Time>(n) * verify_batch_per_sig;
    return std::min(batched, static_cast<sim::Time>(n) * verify_signature);
  }
};

/// Parameters shared by all three Setchain algorithms.
struct SetchainParams {
  std::uint32_t n = 4;  ///< servers
  std::uint32_t f = 1;  ///< Byzantine bound; f+1 proofs/signatures thresholds

  std::uint32_t collector_limit = 100;  ///< Table 1 collector size (entries)
  sim::Time collector_timeout = sim::from_seconds(1.0);

  Fidelity fidelity = Fidelity::kFull;

  /// Compresschain: decompress + validate received batches. Disabled for
  /// the "Compresschain Light" ablation in Fig. 2 (left).
  bool validate = true;
  /// Hashchain: run the hash-reversal service (fetch unknown batches and
  /// validate them). Disabled for "Hashchain Light" in Fig. 2 (left), which
  /// assumes all servers correct.
  bool hash_reversal = true;
  /// Skip per-element set bookkeeping (the highest-rate sweeps); implies
  /// trusting element uniqueness, which the workload generator guarantees.
  bool lean_state = false;

  /// Hashchain signer committee (§4.1 / future work: "having only a set of
  /// 2f+1 servers sign each batch-hash"). 0 = every server co-signs (the
  /// paper's evaluated algorithm); otherwise only the `hashchain_committee`
  /// servers deterministically drawn from the batch hash co-sign, cutting
  /// ledger traffic and reversal requests per batch from n to ~committee.
  /// Values below f+1 are clamped up to f+1 (consolidation needs f+1
  /// signatures); 2f+1 guarantees at least f+1 correct committee members.
  std::uint32_t hashchain_committee = 0;

  /// Measured szx ratio used to size compressed batches in calibrated runs;
  /// the experiment runner overwrites this with a fresh measurement.
  double calibrated_compress_ratio = 3.0;

  sim::Time request_batch_timeout = sim::from_millis(500);
  sim::Time request_batch_retry = sim::from_millis(300);

  CostModel costs;
};

}  // namespace setchain::core
