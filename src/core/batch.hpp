#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/element.hpp"
#include "core/proofs.hpp"

namespace setchain::core {

/// A collector batch: the unit Compresschain compresses into one ledger
/// transaction and Hashchain hashes into a hash-batch. Holds client
/// elements plus piggybacked epoch-proofs (the collector receives both,
/// §3 Compresschain).
struct Batch {
  std::uint64_t uid = 0;  ///< run-unique (drives calibrated hashing)
  crypto::ProcessId origin = 0;
  std::vector<Element> elements;
  std::vector<EpochProof> proofs;

  std::uint64_t element_bytes() const {
    std::uint64_t s = 0;
    for (const auto& e : elements) s += e.wire_size;
    return s;
  }
  /// Serialized size: entries plus framing.
  std::uint64_t wire_size() const {
    return 8 + element_bytes() + proofs.size() * kEpochProofWireSize;
  }
  std::size_t entry_count() const { return elements.size() + proofs.size(); }
  bool empty() const { return elements.empty() && proofs.empty(); }
};

using BatchPtr = std::shared_ptr<const Batch>;

/// Full-fidelity wire format: varint entry count, then tagged entries
/// (kElementTag / kEpochProofTag).
codec::Bytes serialize_batch(const Batch& b);

/// Total parser: Byzantine peers may hand us arbitrary bytes as a "batch".
std::optional<Batch> parse_batch(codec::ByteView bytes);

/// Hash(batch): SHA-512 of the serialization in full fidelity; a
/// deterministic placeholder keyed by content ids in calibrated runs.
EpochHash batch_hash(const Batch& b, Fidelity fidelity);

/// Compressed size of a batch under the szx codec: real compression in full
/// fidelity, `wire/ratio + header` in calibrated runs (ratio measured from
/// the real codec by the experiment runner).
std::uint64_t compressed_size(const Batch& b, Fidelity fidelity, double calibrated_ratio,
                              codec::Bytes* out_compressed = nullptr);

}  // namespace setchain::core
