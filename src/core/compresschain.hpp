#pragma once

#include "core/setchain_base.hpp"

namespace setchain::core {

/// Algorithm Compresschain (§3): client elements and epoch-proofs accumulate
/// in a collector; full (or timed-out) batches are compressed and appended
/// to the ledger as a single transaction; every compressed batch in a block
/// becomes one epoch. Throughput improves over Vanilla by the compression
/// ratio and the amortized per-transaction overhead.
class CompresschainServer final : public SetchainServer {
 public:
  CompresschainServer(ServerContext ctx, crypto::ProcessId id);

  bool add(Element e) override;
  void on_new_block(const ledger::Block& b);

  Collector& collector() { return collector_; }
  std::uint64_t batches_appended() const { return batches_appended_; }

 protected:
  void on_crash(bool wipe) override;

 private:
  void on_batch_ready(Batch&& batch);
  void process_block(const ledger::Block& b);
  void process_batch(const Batch& batch, const ledger::Block& b);

  Collector collector_;
  std::uint64_t batches_appended_ = 0;
};

}  // namespace setchain::core
