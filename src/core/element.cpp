#include "core/element.hpp"

#include "crypto/sha512.hpp"
#include "sim/rng.hpp"

namespace setchain::core {

void serialize_element(codec::Writer& w, const Element& e) {
  w.u8(kElementTag);
  w.u64le(e.id);
  w.u32le(e.client);
  w.lp_bytes(e.payload);
  w.bytes(codec::ByteView(e.sig.data(), e.sig.size()));
}

std::optional<Element> parse_element(codec::Reader& r) {
  // Caller consumed the tag already.
  const std::size_t start = r.position();
  Element e;
  const auto id = r.u64le();
  const auto client = r.u32le();
  const auto payload = r.lp_bytes();
  if (!id || !client || !payload) return std::nullopt;
  const auto sig = r.bytes(crypto::Ed25519::kSignatureSize);
  if (!sig) return std::nullopt;
  e.id = *id;
  e.client = *client;
  e.payload.assign(payload->begin(), payload->end());
  std::copy(sig->begin(), sig->end(), e.sig.begin());
  // wire_size is the bytes actually consumed (plus the tag the caller read):
  // recomputing it from a size formula can silently drift from the real
  // frame length when the format changes.
  e.wire_size = static_cast<std::uint32_t>(r.position() - start + 1);
  return e;
}

namespace {

/// The signed message of an element: id || payload, so the signature also
/// authenticates placement. Must match ElementFactory::make.
codec::Bytes element_signed_message(const Element& e) {
  codec::Writer w;
  w.u64le(e.id);
  w.bytes(e.payload);
  return w.take();
}

/// Syntactic well-formedness shared by the scalar and batched validators;
/// everything except the signature.
bool element_well_formed(const Element& e, Fidelity fidelity) {
  // The id must be bound to the signing client, or a Byzantine client could
  // replay another client's payload under a colliding id.
  if (element_client(e.id) != e.client) return false;
  if (fidelity == Fidelity::kFull && e.payload.empty()) return false;
  return true;
}

}  // namespace

bool valid_element(const Element& e, const crypto::Pki& pki, Fidelity fidelity) {
  if (!element_well_formed(e, fidelity)) return false;
  if (fidelity == Fidelity::kCalibrated) return e.valid_flag;
  return pki.verify(e.client, element_signed_message(e), e.sig);
}

std::vector<bool> valid_elements(const std::vector<Element>& es, const crypto::Pki& pki,
                                 Fidelity fidelity) {
  std::vector<bool> out(es.size(), false);
  if (fidelity == Fidelity::kCalibrated) {
    for (std::size_t i = 0; i < es.size(); ++i) {
      out[i] = element_well_formed(es[i], fidelity) && es[i].valid_flag;
    }
    return out;
  }

  // Collect the signed messages of the well-formed elements, then verify
  // all signatures in one batch (with bisection culprit identification, so
  // per-element results match scalar valid_element exactly).
  std::vector<codec::Bytes> messages;
  std::vector<std::size_t> positions;
  messages.reserve(es.size());
  positions.reserve(es.size());
  for (std::size_t i = 0; i < es.size(); ++i) {
    if (!element_well_formed(es[i], fidelity)) continue;
    messages.push_back(element_signed_message(es[i]));
    positions.push_back(i);
  }
  // Views are built only after `messages` stops growing (reallocation would
  // invalidate them).
  std::vector<crypto::Pki::SignedMessage> items;
  items.reserve(positions.size());
  for (std::size_t j = 0; j < positions.size(); ++j) {
    items.push_back(crypto::Pki::SignedMessage{es[positions[j]].client, messages[j],
                                               &es[positions[j]].sig});
  }
  const auto res = pki.verify_batch(items);
  for (std::size_t j = 0; j < positions.size(); ++j) out[positions[j]] = res.valid[j];
  return out;
}

std::uint64_t element_digest(const Element& e, Fidelity fidelity) {
  if (fidelity == Fidelity::kFull && !e.payload.empty()) {
    const auto d = crypto::Sha512::hash(e.payload);
    return codec::read_u64le(codec::ByteView(d.data(), 8));
  }
  std::uint64_t s = e.id ^ 0xC0FFEE5EED5EEDULL;
  return sim::splitmix64(s);
}

ElementFactory::ElementFactory(workload::ArbitrumLikeGenerator& gen, crypto::Pki& pki,
                               Fidelity fidelity)
    : gen_(gen), pki_(pki), fidelity_(fidelity) {}

Element ElementFactory::make(crypto::ProcessId client, std::uint64_t seq) {
  ++created_;
  Element e;
  e.client = client;
  e.id = make_element_id(client, seq);
  const std::uint32_t target = gen_.sample_size();
  if (fidelity_ == Fidelity::kCalibrated) {
    e.wire_size = target;
    e.valid_flag = true;
    return e;
  }
  const std::uint32_t payload_size =
      target > kElementOverhead ? target - kElementOverhead : 16;
  e.payload = gen_.make_payload(e.id, payload_size);
  e.sig = pki_.sign(client, element_signed_message(e));
  codec::Writer ser;
  serialize_element(ser, e);
  e.wire_size = static_cast<std::uint32_t>(ser.size());
  return e;
}

Element ElementFactory::make_invalid(crypto::ProcessId client, std::uint64_t seq) {
  Element e = make(client, seq);
  if (fidelity_ == Fidelity::kCalibrated) {
    e.valid_flag = false;
  } else {
    e.sig[0] ^= 0xFF;  // break the signature
  }
  return e;
}

}  // namespace setchain::core
