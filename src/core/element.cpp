#include "core/element.hpp"

#include "crypto/sha512.hpp"
#include "sim/rng.hpp"

namespace setchain::core {

void serialize_element(codec::Writer& w, const Element& e) {
  w.u8(kElementTag);
  w.u64le(e.id);
  w.u32le(e.client);
  w.lp_bytes(e.payload);
  w.bytes(codec::ByteView(e.sig.data(), e.sig.size()));
}

std::optional<Element> parse_element(codec::Reader& r) {
  // Caller consumed the tag already.
  Element e;
  const auto id = r.u64le();
  const auto client = r.u32le();
  const auto payload = r.lp_bytes();
  if (!id || !client || !payload) return std::nullopt;
  const auto sig = r.bytes(crypto::Ed25519::kSignatureSize);
  if (!sig) return std::nullopt;
  e.id = *id;
  e.client = *client;
  e.payload.assign(payload->begin(), payload->end());
  std::copy(sig->begin(), sig->end(), e.sig.begin());
  e.wire_size =
      static_cast<std::uint32_t>(kElementOverhead - 4 + codec::varint_size(e.payload.size()) +
                                 e.payload.size());
  return e;
}

bool valid_element(const Element& e, const crypto::Pki& pki, Fidelity fidelity) {
  // The id must be bound to the signing client, or a Byzantine client could
  // replay another client's payload under a colliding id.
  if (element_client(e.id) != e.client) return false;
  if (fidelity == Fidelity::kCalibrated) return e.valid_flag;
  if (e.payload.empty()) return false;
  // Sign over id || payload so the signature also authenticates placement.
  codec::Writer w;
  w.u64le(e.id);
  w.bytes(e.payload);
  return pki.verify(e.client, w.buffer(), e.sig);
}

std::uint64_t element_digest(const Element& e, Fidelity fidelity) {
  if (fidelity == Fidelity::kFull && !e.payload.empty()) {
    const auto d = crypto::Sha512::hash(e.payload);
    return codec::read_u64le(codec::ByteView(d.data(), 8));
  }
  std::uint64_t s = e.id ^ 0xC0FFEE5EED5EEDULL;
  return sim::splitmix64(s);
}

ElementFactory::ElementFactory(workload::ArbitrumLikeGenerator& gen, crypto::Pki& pki,
                               Fidelity fidelity)
    : gen_(gen), pki_(pki), fidelity_(fidelity) {}

Element ElementFactory::make(crypto::ProcessId client, std::uint64_t seq) {
  ++created_;
  Element e;
  e.client = client;
  e.id = make_element_id(client, seq);
  const std::uint32_t target = gen_.sample_size();
  if (fidelity_ == Fidelity::kCalibrated) {
    e.wire_size = target;
    e.valid_flag = true;
    return e;
  }
  const std::uint32_t payload_size =
      target > kElementOverhead ? target - kElementOverhead : 16;
  e.payload = gen_.make_payload(e.id, payload_size);
  codec::Writer w;
  w.u64le(e.id);
  w.bytes(e.payload);
  e.sig = pki_.sign(client, w.buffer());
  codec::Writer ser;
  serialize_element(ser, e);
  e.wire_size = static_cast<std::uint32_t>(ser.size());
  return e;
}

Element ElementFactory::make_invalid(crypto::ProcessId client, std::uint64_t seq) {
  Element e = make(client, seq);
  if (fidelity_ == Fidelity::kCalibrated) {
    e.valid_flag = false;
  } else {
    e.sig[0] ^= 0xFF;  // break the signature
  }
  return e;
}

}  // namespace setchain::core
