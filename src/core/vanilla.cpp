#include "core/vanilla.hpp"

namespace setchain::core {

VanillaServer::VanillaServer(ServerContext ctx, crypto::ProcessId id)
    : SetchainServer(std::move(ctx), id) {}

bool VanillaServer::add(Element e) {
  if (is_down()) return false;
  cpu_acquire(params().costs.validate_element);
  if (!valid_element(e, *ctx_.pki, fidelity())) return false;
  if (in_the_set(e.id)) return false;
  the_set_insert(e.id);

  ledger::Transaction tx;
  tx.kind = ledger::TxKind::kElement;
  tx.wire_size = e.wire_size;
  const ElementId eid = e.id;
  if (fidelity() == Fidelity::kFull) {
    codec::Writer w;
    serialize_element(w, e);
    tx.data = w.take();
    tx.wire_size = static_cast<std::uint32_t>(tx.data.size());
  } else {
    tx.app = std::make_shared<Element>(std::move(e));
  }
  const ledger::TxIdx idx = ctx_.ledger->append(id_, std::move(tx));
  if (ctx_.register_tx_elements) ctx_.register_tx_elements(idx, {eid});
  ++elements_appended_;
  return true;
}

void VanillaServer::on_new_block(const ledger::Block& b) {
  if (is_down()) return;  // a crashed node never sees this block (until sync)
  // Charge the block's processing cost to this node's CPU, then apply the
  // effects at completion time. BusyResource keeps per-server block order.
  // Epoch-proof signatures are verified through the batch path, so the
  // whole block is charged one amortized batch cost instead of a standalone
  // verify per proof.
  sim::Time cost = 0;
  std::uint64_t n_proofs = 0;
  const auto& table = ctx_.ledger->txs();
  for (const auto idx : b.txs) {
    const auto& tx = table.get(idx);
    switch (tx.kind) {
      case ledger::TxKind::kElement:
        cost += params().costs.validate_element;
        break;
      case ledger::TxKind::kEpochProof:
        ++n_proofs;
        break;
      default:
        cost += params().costs.check_tx_cost(tx.wire_size);
        break;
    }
  }
  cost += params().costs.verify_batch_cost(n_proofs);
  const sim::Time done = cpu_acquire(cost);
  if (ctx_.sim) {
    ctx_.sim->schedule_at(done, [this, &b, inc = incarnation()] {
      if (inc == incarnation()) process_block(b);
    });
  } else {
    process_block(b);
  }
}

void VanillaServer::process_block(const ledger::Block& b) {
  note_block_applied(b.height);
  const auto& table = ctx_.ledger->txs();
  std::vector<Element> elements;
  std::vector<EpochProof> proofs;

  for (const auto idx : b.txs) {
    const auto& tx = table.get(idx);
    if (fidelity() == Fidelity::kFull) {
      // Parse from the wire; anything malformed (Byzantine garbage) is
      // skipped.
      codec::Reader r(tx.data);
      const auto tag = r.u8();
      if (!tag) continue;
      if (*tag == kElementTag) {
        if (auto e = parse_element(r)) elements.push_back(std::move(*e));
      } else if (*tag == kEpochProofTag) {
        if (auto p = parse_epoch_proof(r)) proofs.push_back(std::move(*p));
      }
    } else {
      if (tx.kind == ledger::TxKind::kElement) {
        if (const auto* e = tx.app_as<Element>()) elements.push_back(*e);
      } else if (tx.kind == ledger::TxKind::kEpochProof) {
        if (const auto* p = tx.app_as<EpochProof>()) proofs.push_back(*p);
      }
    }
  }
  // One Ed25519 batch check covers every proof signature in the block.
  absorb_proofs(proofs, b.first_commit_at);

  if (ctx_.recorder) {
    for (const auto& e : elements) ctx_.recorder->on_ledger(e.id, b.first_commit_at);
  }

  const std::vector<Element> g = extract_new_valid(elements);
  std::uint64_t g_bytes = 0;
  for (const auto& e : g) {
    the_set_insert(e.id);
    g_bytes += e.wire_size;
  }
  if (!g.empty()) {
    // Deviation from the pseudocode (which increments the epoch for every
    // block): blocks whose transactions carry no new valid element do not
    // create an (empty) epoch. Combined with CometBFT's
    // create_empty_blocks=false this makes runs terminate; see DESIGN.md.
    cpu_acquire(params().costs.hash_cost(g_bytes) + params().costs.sign);
    const EpochProof p = consolidate(g, b.first_commit_at);
    if (!proof_already_published(p.epoch)) append_proof(p);
  }
}

void VanillaServer::append_proof(const EpochProof& p) {
  ledger::Transaction tx;
  tx.kind = ledger::TxKind::kEpochProof;
  tx.wire_size = kEpochProofWireSize;
  if (fidelity() == Fidelity::kFull) {
    codec::Writer w;
    serialize_epoch_proof(w, p);
    tx.data = w.take();
    tx.wire_size = static_cast<std::uint32_t>(tx.data.size());
  } else {
    tx.app = std::make_shared<EpochProof>(p);
  }
  ctx_.ledger->append(id_, std::move(tx));
}

}  // namespace setchain::core
