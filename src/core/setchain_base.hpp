#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "api/node.hpp"
#include "codec/byte_io.hpp"
#include "core/batch.hpp"
#include "core/collector.hpp"
#include "core/config.hpp"
#include "core/epoch_record.hpp"
#include "ledger/ledger_node.hpp"
#include "metrics/stage_recorder.hpp"
#include "sim/network.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"

namespace setchain::core {

class IBatchExchange;  // core/batch_exchange.hpp — Hashchain transport seam

/// Wiring a server needs. Optional pieces may be null: `net`/`cpus` are
/// absent in InstantLedger unit tests, `recorder` when metrics are off,
/// `batch_exchange` everywhere except transport-backed deployments
/// (net::NodeHost), where it replaces the pointer-based peer paths.
struct ServerContext {
  sim::Simulation* sim = nullptr;
  sim::Network* net = nullptr;
  IBatchExchange* batch_exchange = nullptr;
  ledger::IBlockLedger* ledger = nullptr;
  crypto::Pki* pki = nullptr;
  std::vector<sim::BusyResource>* cpus = nullptr;
  metrics::StageRecorder* recorder = nullptr;
  const SetchainParams* params = nullptr;
  /// Associates a carrying ledger tx with the elements inside it (drives the
  /// per-element mempool/ledger stage metrics). May be null.
  std::function<void(ledger::TxIdx, const std::vector<ElementId>&)> register_tx_elements;

  /// Fired by this server when it consolidates an epoch, with the full
  /// element contents (in canonical order). The execution layer of
  /// Appendix G subscribes here to run transactions sequentially per epoch.
  /// May be null.
  std::function<void(const EpochRecord&, const std::vector<Element>&)> on_epoch;
};

/// Application-level Byzantine behaviours for fault-injection tests.
struct ServerByzantine {
  bool refuse_batch_service = false;  ///< Hashchain: never serve Request_batch
  bool corrupt_proofs = false;        ///< sign wrong epoch hashes
  bool fake_hash_batches = false;     ///< Hashchain: pair every real batch
                                      ///< announcement with a fake hash that
                                      ///< has no batch behind it
};

/// Common state and helpers of the three Setchain algorithms (§2):
/// the_set, history, epoch counter, and the epoch-proof set, plus the
/// bookkeeping that must be identical across algorithms (canonical epoch
/// hashing, proof validation/deferral, CPU accounting). Implements the
/// client-facing api::ISetchainNode surface, so everything client-shaped
/// depends on the interface, not on this class.
class SetchainServer : public api::ISetchainNode {
 public:
  SetchainServer(ServerContext ctx, crypto::ProcessId id);
  ~SetchainServer() override = default;

  SetchainServer(const SetchainServer&) = delete;
  SetchainServer& operator=(const SetchainServer&) = delete;

  /// S.add_v(e). Returns false when the element is invalid or already known
  /// (the pseudocode's assert, made total).
  bool add(Element e) override = 0;

  /// S.get_v(): (the_set, history, epoch, proofs) — views into live state.
  /// White-box accessor: always reflects the real state, even while down
  /// (invariant checkers inspect crashed servers through it).
  using Snapshot = api::NodeSnapshot;
  Snapshot get() const;
  /// Client-facing read: a down server serves nothing (null views), exactly
  /// like an unreachable process.
  Snapshot snapshot() const override { return down_ ? Snapshot{} : get(); }

  /// Epoch-proofs held locally for 1-based epoch `epoch_number`;
  /// bounds-checked (epoch 0 / not-yet-consolidated epochs yield an empty
  /// list). Sole owner of the proofs_[epoch-1] index convention.
  const std::vector<EpochProof>& proofs_for_epoch(
      std::uint64_t epoch_number) const override;

  crypto::ProcessId id() const { return id_; }
  crypto::ProcessId node_id() const override { return id_; }
  void set_byzantine(ServerByzantine b) { byz_ = b; }
  const ServerByzantine& byzantine() const { return byz_; }

  /// Crash-fault hooks (sim::FaultKind::kCrash drives these through the
  /// Experiment). While down the server refuses adds, serves empty client
  /// reads, ignores block deliveries, and drops its volatile collector
  /// contents. `wipe` additionally loses the consolidated state (the_set,
  /// history, proofs) — callers then rebuild it by replaying the ledger
  /// (CometbftSim::replay_delivered), the recovery the paper's persistence
  /// model implies. Idempotent: crashing a down server / restarting an up
  /// one is a no-op.
  void crash(bool wipe);
  void restart();
  bool is_down() const { return down_; }
  std::uint64_t crash_count() const { return crashes_; }
  /// Highest ledger height this server fully processed (its WAL position).
  /// Recovery re-delivers blocks from applied_height()+1 — a block that was
  /// delivered but still sitting in the CPU queue when the process died is
  /// covered by the replay, never applied twice (incarnation-guarded).
  std::uint64_t applied_height() const { return applied_height_; }

  std::uint64_t the_set_size() const { return the_set_count_; }
  /// Client-facing like snapshot(): an unreachable (down) server reports
  /// nothing. White-box inspection goes through get().epoch.
  std::uint64_t epoch() const override { return down_ ? 0 : epoch_; }

  /// f+1 valid proofs present locally for epoch i? (client-side commit
  /// criterion when talking to this single server).
  bool epoch_proven(std::uint64_t epoch_number) const;

  /// Durable-state serialization (storage snapshots). Writes the shared
  /// consolidated state — epoch counter, applied height, history records,
  /// proof store, parked ahead-proofs — then the subclass's
  /// serialize_derived(). Volatile collector contents are deliberately
  /// excluded: they die with the process exactly like they die in crash(),
  /// and clients re-add. Format: docs/STORAGE_FORMAT.md §server-state.
  void serialize_state(codec::Writer& w) const;
  /// Inverse of serialize_state onto a freshly constructed server. Restores
  /// derived indexes (the_set as the history union, history_members,
  /// proof_servers) and raises republish_boundary_ to the restored epoch so
  /// WAL-gap replay never re-publishes proofs a previous life already put
  /// on the ledger. False on malformed input (server state unspecified —
  /// callers must discard it).
  bool restore_state(codec::Reader& r);

 protected:
  /// Subclass crash hooks: drop volatile per-algorithm state (collectors,
  /// fetch bookkeeping); `wipe` also clears ledger-derived stores. Called
  /// after the base class has handled the shared state.
  virtual void on_crash(bool wipe) { (void)wipe; }
  /// Called when the server comes back up (kick stalled work back to life).
  virtual void on_restart() {}

  /// Per-algorithm durable state, appended after the shared state by
  /// serialize_state. Vanilla/Compresschain have none (their only extra
  /// state is the volatile collector); Hashchain persists its batch store
  /// and per-hash progress flags.
  virtual void serialize_derived(codec::Writer& w) const { (void)w; }
  virtual bool restore_derived(codec::Reader& r) { (void)r; return true; }

  bool in_the_set(ElementId id) const;
  /// Insert into the_set; false if already present. Under lean_state only a
  /// counter is kept (workload ids are unique by construction).
  bool the_set_insert(ElementId id);
  bool in_history(ElementId id) const;

  /// Filter a batch's elements down to the valid, not-yet-epoch'd ones
  /// (dedup within the input too): the G of the pseudocode. Signature
  /// checks go through the Ed25519 batch path (one multi-scalar
  /// multiplication per call in full fidelity).
  std::vector<Element> extract_new_valid(const std::vector<Element>& es) const;

  /// Create epoch `epoch_+1` from G (callers guarantee determinism of G
  /// across correct servers). Adds to history, notifies the recorder, and
  /// returns this server's epoch-proof (possibly corrupted when Byzantine).
  EpochProof consolidate(const std::vector<Element>& g, sim::Time ledger_time);

  /// Validate an epoch-proof against local history and store it; proofs for
  /// epochs not yet consolidated locally are parked and retried after each
  /// consolidation. `ledger_time` feeds the commit metrics. `presig`
  /// carries a batch-verified signature verdict (kept with the proof if it
  /// is parked, so the signature is never re-verified).
  void absorb_proof(const EpochProof& p, sim::Time ledger_time,
                    SigCheck presig = SigCheck::kUnchecked);

  /// Absorb a block's worth of proofs, verifying all their signatures with
  /// one Ed25519 batch check first (full fidelity).
  void absorb_proofs(const std::vector<EpochProof>& ps, sim::Time ledger_time);

  /// Charge `cost` to this node's simulated CPU; returns completion time.
  sim::Time cpu_acquire(sim::Time cost);

  /// Mark `height` applied (call at the top of process_block).
  void note_block_applied(std::uint64_t height) { applied_height_ = height; }
  /// During a wiped-restart replay, epochs up to the pre-crash count are
  /// re-consolidated from the ledger — their proofs were already published
  /// by the previous life of this process and must not be appended again.
  bool proof_already_published(std::uint64_t epoch_number) const {
    return epoch_number <= republish_boundary_;
  }
  /// Monotonic process-lifetime counter, bumped by crash(). Deferred
  /// continuations (CPU-queued block processing) capture it and bail out
  /// when the incarnation changed underneath them — work scheduled by a
  /// previous life of the process dies with it.
  std::uint64_t incarnation() const { return incarnation_; }

  sim::Time now() const;
  const SetchainParams& params() const { return *ctx_.params; }
  Fidelity fidelity() const { return ctx_.params->fidelity; }

  ServerContext ctx_;
  crypto::ProcessId id_;
  ServerByzantine byz_;
  bool down_ = false;
  std::uint64_t crashes_ = 0;
  std::uint64_t incarnation_ = 0;
  std::uint64_t applied_height_ = 0;
  std::uint64_t republish_boundary_ = 0;  ///< epochs published before a wipe

  std::unordered_set<ElementId> the_set_;
  std::uint64_t the_set_count_ = 0;
  std::unordered_set<ElementId> history_members_;
  std::vector<EpochRecord> history_;                ///< [i] = epoch i+1
  std::vector<std::vector<EpochProof>> proofs_;     ///< by epoch
  std::vector<std::unordered_set<crypto::ProcessId>> proof_servers_;
  std::uint64_t epoch_ = 0;

 private:
  void try_flush_pending_proofs(sim::Time ledger_time);

  /// Proofs received ahead of local consolidation of their epoch, with the
  /// batch-verified signature verdict they arrived with.
  struct PendingProof {
    EpochProof proof;
    SigCheck presig;
  };
  std::unordered_map<std::uint64_t, std::vector<PendingProof>> pending_proofs_;
  static constexpr std::uint64_t kMaxPendingEpochAhead = 100'000;
};

}  // namespace setchain::core
