#pragma once

#include <functional>

#include "core/batch.hpp"
#include "sim/simulation.hpp"

namespace setchain::core {

/// The per-server collector of Compresschain/Hashchain (§3): elements added
/// by clients and epoch-proofs created by the server accumulate until the
/// collector size is reached or a timeout fires, then the batch is handed to
/// the algorithm (isReady(batch) in the pseudocode).
class Collector {
 public:
  /// `sim` may be null (ledger-only unit tests): the timeout path is then
  /// disabled and only the size trigger / manual flush emit batches.
  Collector(sim::Simulation* sim, std::size_t limit, sim::Time timeout,
            std::function<void(Batch&&)> on_ready);

  void add_element(Element e);
  void add_proof(EpochProof p);

  /// Flush regardless of fill level (used at drain time). No-op when empty.
  void flush();

  /// Drop the accumulating batch and cancel the flush timer — a crashing
  /// server loses its collector contents (volatile memory).
  void clear();

  std::size_t size() const { return batch_.entry_count(); }
  std::uint64_t batches_emitted() const { return batches_; }

  /// Origin server stamped on emitted batches.
  void set_origin(crypto::ProcessId origin) { origin_ = origin; }

 private:
  void note_added();
  void emit();

  sim::Simulation* sim_;
  std::size_t limit_;
  sim::Time timeout_;
  std::function<void(Batch&&)> on_ready_;
  crypto::ProcessId origin_ = 0;
  Batch batch_;
  sim::EventHandle timer_;
  std::uint64_t batches_ = 0;
  std::uint64_t next_uid_ = 0;
};

}  // namespace setchain::core
