#pragma once

#include <deque>

#include "core/batch_store.hpp"
#include "core/setchain_base.hpp"

namespace setchain::core {

/// Algorithm Hashchain (§3) — the paper's primary contribution. Batches are
/// hashed; only the fixed-size hash-batch <h, sig, server> travels through
/// consensus. A hash consolidates into an epoch once hash-batches from f+1
/// distinct servers are on the ledger (so at least one correct server can
/// serve the batch contents). Unknown batches are fetched from a signer via
/// the Request_batch service, verified against their hash, re-signed and
/// re-announced.
///
/// Determinism note (DESIGN.md): signer counting uses only ledger content
/// (valid signatures), so the consolidation *position* is identical at every
/// correct server; a server lacking the batch contents blocks its
/// consolidation queue until the fetch succeeds (guaranteed: f+1 signers
/// include a correct one) instead of skipping, which keeps epoch numbering
/// consistent even under Byzantine batch-withholding.
class HashchainServer final : public SetchainServer {
 public:
  HashchainServer(ServerContext ctx, crypto::ProcessId id);

  bool add(Element e) override;
  void on_new_block(const ledger::Block& b);

  /// Wire the peer vector (index = server id) for the batch-exchange
  /// service. Must be called on every server before the run starts.
  void connect_peers(std::vector<HashchainServer*> peers);

  Collector& collector() { return collector_; }
  const BatchStore& store() const { return store_; }

  /// Byzantine hook for tests: announce a hash-batch whose batch contents
  /// nobody stores. Correct servers must never consolidate it.
  void byz_announce_fake_hash();

  std::uint64_t hash_batches_appended() const { return hash_batches_appended_; }
  std::uint64_t fetches_started() const { return fetches_started_; }
  std::uint64_t fetches_failed() const { return fetches_failed_; }
  std::size_t consolidation_backlog() const { return consolidation_queue_.size(); }

  // ---- durable storage hooks (net::NodeHost recovery) ----
  /// Install the batch-store put observer (WAL batch records). Installed
  /// only after recovery so restored batches are not re-logged.
  void set_store_on_put(BatchStore::OnPut fn) { store_.set_on_put(std::move(fn)); }
  /// Replay one WAL batch record: parse `serialized`, check it hashes to
  /// `h`, and register it in the store. Pure store mutation — no co-sign,
  /// fetch, or consolidation side effects (kick_recovery() runs those once
  /// the whole replay is done). False when the bytes don't parse/hash.
  bool restore_batch(const EpochHash& h, codec::Bytes&& serialized);
  /// Resume after recovery: retry head-of-line consolidation (and through
  /// it, any fetch for a still-missing batch).
  void kick_recovery() { try_consolidate(); }

  // ---- batch-exchange wire protocol (invoked via the network) ----
  void serve_batch_request(crypto::ProcessId requester, const EpochHash& h);
  /// `batch_matches_serialized`: the caller guarantees `batch` IS the parse
  /// of `serialized` (a transport host that already decoded the wire bytes
  /// sets it, skipping the defensive re-parse). The sim path leaves it
  /// false — there `batch` aliases the responder's store and only the
  /// serialized bytes are trusted-after-verification.
  void on_batch_response(const EpochHash& h, BatchPtr batch,
                         const codec::Bytes* serialized,
                         bool batch_matches_serialized = false);
  /// Wire-path variant: `batch` IS the parse of `serialized` and the bytes
  /// are surrendered to this server — at kFull fidelity they move straight
  /// into the store (no copy; the net path hands over its decode buffer).
  void on_batch_response(const EpochHash& h, BatchPtr batch,
                         codec::Bytes&& serialized);

 protected:
  void on_crash(bool wipe) override;
  void on_restart() override;
  void serialize_derived(codec::Writer& w) const override;
  bool restore_derived(codec::Reader& r) override;

 private:
  struct HashState {
    std::unordered_set<crypto::ProcessId> signers;
    std::vector<crypto::ProcessId> fetch_candidates;  ///< signers, in order seen
    std::size_t next_candidate = 0;
    std::uint64_t attempt_seq = 0;
    std::uint64_t give_up_after = 0;  ///< speculative-fetch attempt budget
    bool fetching = false;
    bool own_appended = false;
    bool proofs_absorbed = false;
    bool elements_marked = false;   ///< recorder on_ledger done
    bool enqueued = false;          ///< in consolidation queue
    bool consolidated = false;
    sim::Time first_block_time = 0;
    sim::Time consolidate_block_time = 0;
  };

  /// Is this server in the (deterministic, hash-derived) signer committee
  /// for `h`? Always true when params().hashchain_committee == 0.
  bool in_committee(const EpochHash& h) const;

  void on_batch_ready(Batch&& batch);
  void process_block(const ledger::Block& b);
  void handle_hash_batch(const HashBatchMsg& hb, const ledger::Block& b);
  void append_hash_batch(const EpochHash& h);
  void batch_now_available(const EpochHash& h);
  void start_fetch(const EpochHash& h);
  void fetch_attempt(const EpochHash& h);
  void on_fetch_timeout(const EpochHash& h, std::uint64_t attempt);
  void try_consolidate();
  void consolidate_hash(const EpochHash& h, const Batch& batch);

  Collector collector_;
  BatchStore store_;
  std::unordered_map<EpochHash, HashState, EpochHashHasher> hash_state_;
  std::deque<EpochHash> consolidation_queue_;
  std::vector<HashchainServer*> peers_;

  std::uint64_t hash_batches_appended_ = 0;
  std::uint64_t fetches_started_ = 0;
  std::uint64_t fetches_failed_ = 0;

  static constexpr std::uint32_t kRequestWireSize = 96;
  /// Fetch attempts granted to a hash nobody needs yet (not enqueued for
  /// consolidation); a vanished holder must not be polled to the horizon.
  static constexpr std::uint64_t kMaxSpeculativeFetchAttempts = 8;
};

}  // namespace setchain::core
