#pragma once

#include <string>
#include <vector>

#include "core/setchain_base.hpp"

namespace setchain::core {

/// Checker for the Setchain correctness properties (§2, Properties 1-8).
/// Safety properties are checkable at any point; liveness properties are
/// checked at quiescence (all traffic drained), where "eventually" must have
/// happened. Only *correct* servers are passed in — Byzantine servers give
/// no guarantees.
struct InvariantReport {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
  std::string to_string() const;
};

/// P1 Consistent-Sets: history[i] ⊆ the_set, every server.
/// P5 Unique-Epoch:   epochs pairwise disjoint, every server.
/// P6 Consistent-Gets: same epoch contents across servers (up to min epoch).
InvariantReport check_safety(const std::vector<const SetchainServer*>& servers);

/// At quiescence:
/// P2/P3 Add-Get-Local & Get-Global: every accepted valid element is in
///        the_set of every correct server.
/// P4 Eventual-Get: ... and in history.
/// P8 Valid-Epoch: every epoch has >= f+1 proofs from distinct servers.
InvariantReport check_liveness_quiescent(
    const std::vector<const SetchainServer*>& servers,
    const std::vector<ElementId>& accepted_valid_elements,
    const SetchainParams& params, const crypto::Pki& pki);

/// P7 Add-before-Get: nothing in the_set/history that no client created.
InvariantReport check_add_before_get(
    const std::vector<const SetchainServer*>& servers,
    const std::unordered_set<ElementId>& all_created);

/// One algorithm's view of a workload for cross-algorithm conformance: the
/// epoch chain of a correct server from a quiescent run of that algorithm.
struct AlgoRun {
  std::string name;                         ///< label for violation messages
  const std::vector<EpochRecord>* history;  ///< a correct server's history
};

/// P9 Cross-Algorithm Conformance: vanilla, hashchain, and compresschain
/// implement the same abstract Setchain data type, so driving them with the
/// same workload must give
///   (a) the same consolidated element set (union over history), and
///   (b) identical canonical hashes wherever two runs produced an epoch with
///       the same number and the same element ids — the epoch hash is a pure
///       function of (number, contents), never of algorithm or server.
/// Epoch *boundaries* may legitimately differ between algorithms.
InvariantReport check_cross_algorithm(const std::vector<AlgoRun>& runs);

}  // namespace setchain::core
