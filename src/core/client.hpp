#pragma once

#include "api/quorum_client.hpp"
#include "core/element.hpp"
#include "core/setchain_base.hpp"
#include "sim/rng.hpp"

namespace setchain::core {

/// Simulated Setchain client: a thin rate-driver over api::QuorumClient.
/// Adds elements at a fixed rate (sending_rate / server_count, like the
/// paper's per-container clients) through the quorum facade — its primary
/// node when correct, failing over or broadcasting per the configured
/// WritePolicy. All Byzantine-tolerant read/verify logic lives in
/// api::QuorumClient; the single-server light-client check of §2 remains as
/// the static verify() helper.
class SetchainClient {
 public:
  struct Config {
    double rate_el_per_s = 100.0;
    sim::Time start = 0;
    sim::Time add_duration = sim::from_seconds(50);
    double invalid_fraction = 0.0;  ///< Byzantine: fraction of bad elements

    /// Optional sinks for invariant checking (not owned; may be null):
    /// ids of *valid* elements a server accepted, and ids of everything the
    /// client ever created (including invalid ones).
    std::vector<ElementId>* accepted_sink = nullptr;
    std::unordered_set<ElementId>* created_sink = nullptr;
  };

  SetchainClient(sim::Simulation& sim, crypto::ProcessId client_id,
                 api::QuorumClient quorum, ElementFactory& factory,
                 metrics::StageRecorder* recorder, Config cfg, std::uint64_t seed);

  /// Arm the add schedule. Elements are spaced 1/rate apart with a small
  /// deterministic phase offset per client so clients do not add in lockstep.
  void start();

  std::uint64_t added() const { return added_; }
  std::uint64_t rejected() const { return rejected_; }

  /// The quorum facade this client drives (reads, verification, health).
  api::QuorumClient& quorum() { return quorum_; }
  const api::QuorumClient& quorum() const { return quorum_; }

  /// Light-client verification against a single server: is the element in
  /// an epoch, and does that epoch carry >= f+1 valid epoch-proofs? (The
  /// trust-no-single-server workflow is api::QuorumClient::verify.)
  struct VerifyResult {
    bool in_the_set = false;
    bool in_epoch = false;
    std::uint64_t epoch = 0;
    std::size_t valid_proofs = 0;
    bool committed = false;  ///< in_epoch && valid_proofs >= f+1
  };
  static VerifyResult verify(const SetchainServer& server, ElementId id,
                             const crypto::Pki& pki, const SetchainParams& params);

 private:
  void add_one();

  sim::Simulation& sim_;
  crypto::ProcessId id_;
  api::QuorumClient quorum_;
  ElementFactory& factory_;
  metrics::StageRecorder* recorder_;
  Config cfg_;
  sim::Rng rng_;
  std::uint64_t seq_ = 0;
  std::uint64_t added_ = 0;
  std::uint64_t rejected_ = 0;
  sim::Time deadline_ = 0;
};

}  // namespace setchain::core
