#include "core/hashchain.hpp"

#include "core/batch_exchange.hpp"
#include "sim/rng.hpp"

namespace setchain::core {

HashchainServer::HashchainServer(ServerContext ctx, crypto::ProcessId id)
    : SetchainServer(std::move(ctx), id),
      collector_(this->ctx_.sim, this->ctx_.params->collector_limit,
                 this->ctx_.params->collector_timeout,
                 [this](Batch&& b) { on_batch_ready(std::move(b)); }) {
  collector_.set_origin(id);
}

void HashchainServer::connect_peers(std::vector<HashchainServer*> peers) {
  peers_ = std::move(peers);
}

bool HashchainServer::add(Element e) {
  if (is_down()) return false;
  cpu_acquire(params().costs.validate_element);
  if (!valid_element(e, *ctx_.pki, fidelity())) return false;
  if (in_the_set(e.id)) return false;
  the_set_insert(e.id);
  collector_.add_element(std::move(e));
  return true;
}

void HashchainServer::on_crash(bool wipe) {
  collector_.clear();
  if (wipe) {
    store_.clear();
    hash_state_.clear();
    consolidation_queue_.clear();
  } else {
    // In-flight fetch attempts die with the process; retained-state restarts
    // re-issue them from the consolidation queue (on_restart).
    for (auto& [h, st] : hash_state_) st.fetching = false;
  }
}

void HashchainServer::on_restart() {
  // Resume head-of-line fetches for anything still queued (retained state);
  // wiped servers rebuild the queue from the ledger replay instead.
  try_consolidate();
}

void HashchainServer::on_batch_ready(Batch&& batch) {
  if (is_down()) return;  // dying process: the batch never leaves the box
  codec::Bytes serialized;
  if (fidelity() == Fidelity::kFull) serialized = serialize_batch(batch);
  cpu_acquire(params().costs.hash_cost(batch.wire_size()) + params().costs.sign);

  auto ptr = std::make_shared<const Batch>(std::move(batch));
  const EpochHash h = batch_hash(*ptr, fidelity());

  // hash_to_batch[h] <- batch; Register_batch(h, batch).
  store_.put(h, ptr, std::move(serialized));
  hash_state_[h].own_appended = true;
  append_hash_batch(h);
  // Byzantine: pair every real announcement with a hash nobody can reverse.
  // Correct servers must ignore the fakes without stalling on the real batch.
  if (byz_.fake_hash_batches) byz_announce_fake_hash();
}

void HashchainServer::append_hash_batch(const EpochHash& h) {
  const HashBatchMsg hb = make_hash_batch(*ctx_.pki, id_, h, fidelity());
  ledger::Transaction tx;
  tx.kind = ledger::TxKind::kHashBatch;
  tx.wire_size = kHashBatchWireSize;
  if (fidelity() == Fidelity::kFull) {
    codec::Writer w;
    serialize_hash_batch(w, hb);
    tx.data = w.take();
    tx.wire_size = static_cast<std::uint32_t>(tx.data.size());
  } else {
    tx.app = std::make_shared<HashBatchMsg>(hb);
  }
  const ledger::TxIdx idx = ctx_.ledger->append(id_, std::move(tx));
  ++hash_batches_appended_;

  // Associate carried elements with the hash-batch tx for stage metrics
  // (only for our own batch announcements — the first carrier).
  if (ctx_.register_tx_elements) {
    if (const BatchPtr batch = store_.find(h); batch && !batch->elements.empty()) {
      const HashState& st = hash_state_[h];
      if (st.own_appended && batch->origin == id_) {
        std::vector<ElementId> ids;
        ids.reserve(batch->elements.size());
        for (const auto& e : batch->elements) ids.push_back(e.id);
        ctx_.register_tx_elements(idx, ids);
      }
    }
  }
}

void HashchainServer::byz_announce_fake_hash() {
  EpochHash h{};
  std::uint64_t seed = 0xFA4EULL ^ (static_cast<std::uint64_t>(id_) << 32) ^
                       hash_batches_appended_;
  for (std::size_t i = 0; i < h.size(); i += 8) {
    const std::uint64_t v = sim::splitmix64(seed);
    for (std::size_t j = 0; j < 8; ++j) h[i + j] = static_cast<std::uint8_t>(v >> (8 * j));
  }
  hash_state_[h].own_appended = true;  // never serve it, never re-sign
  append_hash_batch(h);
}

void HashchainServer::on_new_block(const ledger::Block& b) {
  if (is_down()) return;  // a crashed node never sees this block (until sync)
  // Hash-batch announcement signatures are verified through the Ed25519
  // batch path: one amortized batch cost per block instead of a standalone
  // verify per announcement.
  sim::Time cost = 0;
  std::uint64_t n_hash_batches = 0;
  const auto& table = ctx_.ledger->txs();
  if (params().hash_reversal) {
    for (const auto idx : b.txs) {
      const auto& tx = table.get(idx);
      if (tx.kind == ledger::TxKind::kHashBatch ||
          (fidelity() == Fidelity::kFull && !tx.data.empty() &&
           tx.data[0] == kHashBatchTag)) {
        ++n_hash_batches;
      } else {
        cost += params().costs.check_tx_cost(tx.wire_size);
      }
    }
    cost += params().costs.verify_batch_cost(n_hash_batches);
  }
  const sim::Time done = cpu_acquire(cost);
  if (ctx_.sim) {
    ctx_.sim->schedule_at(done, [this, &b, inc = incarnation()] {
      if (inc == incarnation()) process_block(b);
    });
  } else {
    process_block(b);
  }
}

void HashchainServer::process_block(const ledger::Block& b) {
  note_block_applied(b.height);
  const auto& table = ctx_.ledger->txs();
  std::vector<HashBatchMsg> hbs;
  for (const auto idx : b.txs) {
    const auto& tx = table.get(idx);
    std::optional<HashBatchMsg> hb;
    if (fidelity() == Fidelity::kFull) {
      codec::Reader r(tx.data);
      const auto tag = r.u8();
      if (!tag || *tag != kHashBatchTag) continue;
      hb = parse_hash_batch(r);
    } else {
      if (tx.kind != ledger::TxKind::kHashBatch) continue;
      if (const auto* p = tx.app_as<HashBatchMsg>()) hb = *p;
    }
    if (!hb) continue;
    if (hb->server >= params().n) continue;  // unknown signer
    hbs.push_back(std::move(*hb));
  }
  // One Ed25519 batch check covers every announcement signature in the
  // block; handling below stays in ledger order.
  const std::vector<SigCheck> sigs =
      params().hash_reversal ? batch_check_hash_batch_sigs(hbs, *ctx_.pki, fidelity())
                             : std::vector<SigCheck>(hbs.size(), SigCheck::kUnchecked);
  for (std::size_t i = 0; i < hbs.size(); ++i) {
    if (params().hash_reversal &&
        !valid_hash_batch(hbs[i], *ctx_.pki, fidelity(), sigs[i])) {
      continue;  // invalid signature
    }
    handle_hash_batch(hbs[i], b);
  }
  try_consolidate();
}

void HashchainServer::handle_hash_batch(const HashBatchMsg& hb, const ledger::Block& b) {
  HashState& st = hash_state_[hb.hash];
  if (st.signers.empty()) st.first_block_time = b.first_commit_at;
  const bool new_signer = st.signers.insert(hb.server).second;

  if (store_.contains(hb.hash)) {
    batch_now_available(hb.hash);
  } else if (params().hash_reversal) {
    if (new_signer && hb.server != id_) st.fetch_candidates.push_back(hb.server);
    if (!st.fetching && !st.consolidated) start_fetch(hb.hash);
  } else {
    // Light mode (Fig. 2 ablation): no reversal service; all servers are
    // assumed correct, so contents are taken straight from the origin's
    // store (zero-copy stand-in for a perfect dissemination layer) and the
    // server co-signs immediately. Scenario::validate() refuses to combine
    // this mode with a fault plan; the down-peer guard covers direct
    // crash()-hook use in unit tests.
    for (auto* peer : peers_) {
      if (!peer || peer->is_down()) continue;
      if (const BatchPtr batch = peer->store_.find(hb.hash)) {
        store_.put(hb.hash, batch);
        break;
      }
    }
    batch_now_available(hb.hash);
  }

  if (st.signers.size() == params().f + 1 && !st.enqueued) {
    st.enqueued = true;
    st.consolidate_block_time = b.first_commit_at;
    consolidation_queue_.push_back(hb.hash);
  }
}

bool HashchainServer::in_committee(const EpochHash& h) const {
  const std::uint32_t requested = params().hashchain_committee;
  if (requested == 0 || requested >= params().n) return true;
  const std::uint32_t k = std::max(requested, params().f + 1);

  // Deterministic committee: every server scores (h, server) with the same
  // mixing function; the k lowest scores are the committee. Identical at
  // every correct server because it depends only on ledger content.
  std::uint64_t folded = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    folded = (folded << 8) | h[i];
  }
  const auto score = [folded](std::uint32_t server) {
    std::uint64_t s = folded ^ (0x9E3779B97F4A7C15ULL * (server + 1));
    return sim::splitmix64(s);
  };
  const std::uint64_t own = score(id_);
  std::uint32_t strictly_lower = 0;
  std::uint32_t equal_lower_id = 0;
  for (std::uint32_t server = 0; server < params().n; ++server) {
    if (server == id_) continue;
    const std::uint64_t sc = score(server);
    if (sc < own) ++strictly_lower;
    if (sc == own && server < id_) ++equal_lower_id;  // total order tiebreak
  }
  return strictly_lower + equal_lower_id < k;
}

void HashchainServer::batch_now_available(const EpochHash& h) {
  HashState& st = hash_state_[h];
  const BatchPtr batch = store_.find(h);
  if (!batch) return;

  // Never co-sign a hash the ledger already shows our signature for: after
  // a wiped restart the replay re-delivers our own old announcements, and a
  // slow co-sign path may race its own announcement landing on the ledger.
  if (!st.own_appended && !st.signers.contains(id_) && in_committee(h)) {
    st.own_appended = true;
    cpu_acquire(params().costs.sign);
    append_hash_batch(h);
  }
  if (!st.proofs_absorbed) {
    st.proofs_absorbed = true;
    absorb_proofs(batch->proofs, st.first_block_time);
  }
  if (!st.elements_marked && ctx_.recorder) {
    st.elements_marked = true;
    for (const auto& e : batch->elements) {
      ctx_.recorder->on_ledger(e.id, st.first_block_time);
    }
  }
}

void HashchainServer::start_fetch(const EpochHash& h) {
  HashState& st = hash_state_[h];
  if (st.fetching || store_.contains(h)) return;
  st.fetching = true;
  // Fresh speculative budget per (re)started fetch: a new signer appearing
  // after an earlier give-up grants a full round of attempts again.
  st.give_up_after = st.attempt_seq + kMaxSpeculativeFetchAttempts;
  ++fetches_started_;
  fetch_attempt(h);
}

void HashchainServer::fetch_attempt(const EpochHash& h) {
  HashState& st = hash_state_[h];
  if (store_.contains(h)) {
    st.fetching = false;
    return;
  }
  if (st.fetch_candidates.empty()) {
    st.fetching = false;
    return;
  }
  const crypto::ProcessId target =
      st.fetch_candidates[st.next_candidate % st.fetch_candidates.size()];
  ++st.next_candidate;
  const std::uint64_t attempt = ++st.attempt_seq;

  if (ctx_.batch_exchange) {
    // Transport-backed deployment (loopback or TCP): the exchange routes the
    // request as a wire frame; the answer (or silence) comes back through
    // NodeHost -> on_batch_response. Timeout/retry machinery is unchanged.
    ctx_.batch_exchange->send_request(id_, target, h, kRequestWireSize);
    if (ctx_.sim) {
      ctx_.sim->schedule_in(params().request_batch_timeout,
                            [this, h, attempt] { on_fetch_timeout(h, attempt); });
    } else if (!store_.contains(h)) {
      on_fetch_timeout(h, attempt);
    }
  } else if (ctx_.net && ctx_.sim) {
    // Request over the wire; answer (or silence) comes back asynchronously.
    HashchainServer* peer = peers_.at(target);
    ctx_.net->send(id_, target, kRequestWireSize,
                   [peer, h, me = id_] { peer->serve_batch_request(me, h); });
    ctx_.sim->schedule_in(params().request_batch_timeout,
                          [this, h, attempt] { on_fetch_timeout(h, attempt); });
  } else {
    // Synchronous path for InstantLedger unit tests.
    HashchainServer* peer = peers_.at(target);
    peer->serve_batch_request(id_, h);
    if (!store_.contains(h)) on_fetch_timeout(h, attempt);
  }
}

void HashchainServer::serve_batch_request(crypto::ProcessId requester, const EpochHash& h) {
  if (is_down()) return;               // crashed: silence
  if (byz_.refuse_batch_service) return;  // Byzantine: silence
  const BatchPtr batch = store_.find(h);
  if (!batch) return;  // honest "don't have it" (also silence; requester times out)

  if (ctx_.batch_exchange) {
    // Transport-backed deployment: the serialized batch travels as a wire
    // frame back to the requester; serving still costs CPU first.
    const codec::Bytes* ser = store_.find_serialized(h);
    const sim::Time ready = cpu_acquire(params().costs.request_batch_overhead +
                                        params().costs.hash_cost(batch->wire_size()));
    ctx_.batch_exchange->send_response(id_, requester, h, batch, ser, ready);
    return;
  }

  HashchainServer* peer = peers_.at(requester);
  const codec::Bytes* serialized = store_.find_serialized(h);
  // Serving costs CPU (lookup + serialization + RPC overhead); the response
  // leaves once the serving core gets to it.
  const sim::Time done = cpu_acquire(params().costs.request_batch_overhead +
                                     params().costs.hash_cost(batch->wire_size()));
  if (ctx_.net && ctx_.sim) {
    const std::uint64_t bytes = serialized ? serialized->size() : batch->wire_size();
    ctx_.sim->schedule_at(done, [this, requester, bytes, peer, h, batch, serialized] {
      ctx_.net->send(id_, requester, bytes, [peer, h, batch, serialized] {
        peer->on_batch_response(h, batch, serialized);
      });
    });
  } else {
    peer->on_batch_response(h, batch, serialized);
  }
}

void HashchainServer::on_batch_response(const EpochHash& h, BatchPtr batch,
                                        const codec::Bytes* serialized,
                                        bool batch_matches_serialized) {
  if (is_down()) return;
  HashState& st = hash_state_[h];
  if (store_.contains(h)) return;  // duplicate/late response

  // Verify the contents actually hash to h (the responder may be Byzantine).
  cpu_acquire(params().costs.request_batch_overhead +
              params().costs.hash_cost(batch->wire_size()));
  if (fidelity() == Fidelity::kFull && serialized) {
    BatchPtr owned;
    if (batch_matches_serialized) {
      owned = std::move(batch);  // already the parse of `serialized`
    } else {
      auto parsed = parse_batch(*serialized);
      if (!parsed) return;
      owned = std::make_shared<const Batch>(std::move(*parsed));
    }
    if (batch_hash(*owned, fidelity()) != h) return;
    // Element validation cost: the paper validates fetched batch contents.
    cpu_acquire(static_cast<sim::Time>(owned->elements.size()) *
                params().costs.validate_element);
    store_.put(h, std::move(owned), codec::Bytes(*serialized));
  } else {
    if (batch_hash(*batch, fidelity()) != h) return;
    cpu_acquire(static_cast<sim::Time>(batch->elements.size()) *
                params().costs.validate_element);
    codec::Bytes ser;
    if (fidelity() == Fidelity::kFull) ser = serialize_batch(*batch);
    store_.put(h, std::move(batch), std::move(ser));
  }

  st.fetching = false;
  batch_now_available(h);
  try_consolidate();
}

void HashchainServer::on_batch_response(const EpochHash& h, BatchPtr batch,
                                        codec::Bytes&& serialized) {
  if (is_down()) return;
  HashState& st = hash_state_[h];
  if (store_.contains(h)) return;  // duplicate/late response

  // Verify the contents actually hash to h (the responder may be Byzantine).
  cpu_acquire(params().costs.request_batch_overhead +
              params().costs.hash_cost(batch->wire_size()));
  if (batch_hash(*batch, fidelity()) != h) return;
  cpu_acquire(static_cast<sim::Time>(batch->elements.size()) *
              params().costs.validate_element);
  if (fidelity() != Fidelity::kFull) serialized.clear();  // bytes not kept
  store_.put(h, std::move(batch), std::move(serialized));

  st.fetching = false;
  batch_now_available(h);
  try_consolidate();
}

void HashchainServer::on_fetch_timeout(const EpochHash& h, std::uint64_t attempt) {
  if (is_down()) return;  // stale timer from before the crash
  HashState& st = hash_state_[h];
  if (store_.contains(h)) return;
  if (st.attempt_seq != attempt) return;  // superseded attempt
  ++fetches_failed_;
  // A hash that is not (yet) blocking consolidation is only fetched
  // speculatively — give up after a few dead ends instead of polling a
  // vanished holder forever (a wiped crash can orphan an announced hash for
  // good). New signers or an actual consolidation need restart the fetch.
  // Once enqueued, f+1 signers guarantee a correct server holds the batch,
  // so the head-of-line fetch may retry indefinitely.
  const bool needed = st.enqueued && !st.consolidated;
  if (!needed && st.attempt_seq >= st.give_up_after) {
    st.fetching = false;
    return;
  }
  if (ctx_.sim) {
    // Exponential backoff (capped): repeated refusals/overload must not
    // amplify into a request storm against the remaining signers.
    const sim::Time backoff =
        params().request_batch_retry *
        static_cast<sim::Time>(std::min<std::uint64_t>(st.attempt_seq, 16));
    ctx_.sim->schedule_in(backoff, [this, h] {
      HashState& st = hash_state_[h];
      if (!store_.contains(h) && st.fetching) fetch_attempt(h);
    });
  }
  // Without a simulation clock (unit tests) the retry is driven by the next
  // hash-batch arrival for h (handle_hash_batch -> start_fetch).
  if (!ctx_.sim) st.fetching = false;
}

void HashchainServer::try_consolidate() {
  while (!consolidation_queue_.empty()) {
    const EpochHash h = consolidation_queue_.front();
    BatchPtr batch = store_.find(h);
    if (!batch && !params().hash_reversal) {
      // Light mode: re-pull from any peer still holding the contents (a
      // peer may have pruned after consolidating before we got here).
      for (auto* peer : peers_) {
        if (!peer || peer->is_down()) continue;
        if ((batch = peer->store_.find(h))) {
          store_.put(h, batch);
          break;
        }
      }
    }
    if (!batch) {
      // Head-of-line blocking until the fetch succeeds: keeps epoch
      // numbering identical across correct servers. With f+1 signers at
      // least one correct server can serve the batch, so this terminates.
      HashState& st = hash_state_[h];
      if (params().hash_reversal && !st.fetching) start_fetch(h);
      return;
    }
    consolidation_queue_.pop_front();
    HashState& st = hash_state_[h];
    if (st.consolidated) continue;
    st.consolidated = true;
    batch_now_available(h);  // proofs/metrics if not yet done
    consolidate_hash(h, *batch);
    if (params().lean_state && !params().hash_reversal) {
      // Light+lean runs never serve this batch again: prune it so memory
      // stays bounded at the highest sending rates (150k el/s sweeps).
      store_.erase(h);
    }
  }
}

namespace {
constexpr std::uint8_t kHashchainStateVersion = 1;

constexpr std::uint8_t kStOwnAppended = 1u << 0;
constexpr std::uint8_t kStProofsAbsorbed = 1u << 1;
constexpr std::uint8_t kStElementsMarked = 1u << 2;
constexpr std::uint8_t kStEnqueued = 1u << 3;
constexpr std::uint8_t kStConsolidated = 1u << 4;
}  // namespace

void HashchainServer::serialize_derived(codec::Writer& w) const {
  w.u8(kHashchainStateVersion);

  w.varint(store_.size());
  store_.for_each([&](const EpochHash& h, const Batch& batch,
                      const codec::Bytes& serialized) {
    w.bytes(codec::ByteView(h.data(), h.size()));
    if (serialized.empty()) {
      // Sim-path entry without retained wire bytes: serialize on the fly so
      // the on-disk form is uniform.
      w.lp_bytes(serialize_batch(batch));
    } else {
      w.lp_bytes(serialized);
    }
  });

  w.varint(hash_state_.size());
  for (const auto& [h, st] : hash_state_) {
    w.bytes(codec::ByteView(h.data(), h.size()));
    std::uint8_t flags = 0;
    if (st.own_appended) flags |= kStOwnAppended;
    if (st.proofs_absorbed) flags |= kStProofsAbsorbed;
    if (st.elements_marked) flags |= kStElementsMarked;
    if (st.enqueued) flags |= kStEnqueued;
    if (st.consolidated) flags |= kStConsolidated;
    w.u8(flags);
    w.varint(st.signers.size());
    for (crypto::ProcessId s : st.signers) w.varint(s);
    w.varint(st.fetch_candidates.size());
    for (crypto::ProcessId s : st.fetch_candidates) w.varint(s);
  }

  w.varint(consolidation_queue_.size());
  for (const EpochHash& h : consolidation_queue_) {
    w.bytes(codec::ByteView(h.data(), h.size()));
  }
}

bool HashchainServer::restore_derived(codec::Reader& r) {
  const auto version = r.u8();
  if (!version || *version != kHashchainStateVersion) return false;

  store_.clear();
  hash_state_.clear();
  consolidation_queue_.clear();

  const auto store_count = r.varint();
  if (!store_count) return false;
  for (std::uint64_t i = 0; i < *store_count; ++i) {
    EpochHash h{};
    const auto hash = r.bytes(h.size());
    const auto ser = r.lp_bytes();
    if (!hash || !ser) return false;
    std::memcpy(h.data(), hash->data(), h.size());
    if (!restore_batch(h, codec::Bytes(ser->begin(), ser->end()))) return false;
  }

  const auto state_count = r.varint();
  if (!state_count) return false;
  for (std::uint64_t i = 0; i < *state_count; ++i) {
    EpochHash h{};
    const auto hash = r.bytes(h.size());
    const auto flags = r.u8();
    const auto signer_count = r.varint();
    if (!hash || !flags || !signer_count) return false;
    std::memcpy(h.data(), hash->data(), h.size());
    HashState& st = hash_state_[h];
    st.own_appended = (*flags & kStOwnAppended) != 0;
    st.proofs_absorbed = (*flags & kStProofsAbsorbed) != 0;
    st.elements_marked = (*flags & kStElementsMarked) != 0;
    st.enqueued = (*flags & kStEnqueued) != 0;
    st.consolidated = (*flags & kStConsolidated) != 0;
    for (std::uint64_t k = 0; k < *signer_count; ++k) {
      const auto s = r.varint();
      if (!s) return false;
      st.signers.insert(static_cast<crypto::ProcessId>(*s));
    }
    const auto candidate_count = r.varint();
    if (!candidate_count) return false;
    for (std::uint64_t k = 0; k < *candidate_count; ++k) {
      const auto s = r.varint();
      if (!s) return false;
      st.fetch_candidates.push_back(static_cast<crypto::ProcessId>(*s));
    }
    // Fetch progress is volatile: in-flight attempts died with the process.
    // kick_recovery() restarts the head-of-line fetch from a fresh budget.
  }

  const auto queue_count = r.varint();
  if (!queue_count) return false;
  for (std::uint64_t i = 0; i < *queue_count; ++i) {
    EpochHash h{};
    const auto hash = r.bytes(h.size());
    if (!hash) return false;
    std::memcpy(h.data(), hash->data(), h.size());
    consolidation_queue_.push_back(h);
  }
  return true;
}

bool HashchainServer::restore_batch(const EpochHash& h, codec::Bytes&& serialized) {
  if (store_.contains(h)) return true;  // idempotent (snapshot + WAL overlap)
  auto parsed = parse_batch(serialized);
  if (!parsed) return false;
  auto owned = std::make_shared<const Batch>(std::move(*parsed));
  // Guard against a writer bug pairing the wrong bytes with a hash; the
  // calibrated-fidelity placeholder hash keys on the non-serialized uid, so
  // only the full-fidelity content hash is checkable.
  if (fidelity() == Fidelity::kFull && batch_hash(*owned, fidelity()) != h) {
    return false;
  }
  store_.put(h, std::move(owned), std::move(serialized));
  return true;
}

void HashchainServer::consolidate_hash(const EpochHash& h, const Batch& batch) {
  const HashState& st = hash_state_[h];

  std::vector<Element> g;
  if (params().hash_reversal) {
    g = extract_new_valid(batch.elements);
  } else {
    g.reserve(batch.elements.size());
    for (const auto& e : batch.elements) {
      if (!in_history(e.id)) g.push_back(e);
    }
  }

  std::uint64_t g_bytes = 0;
  for (const auto& e : g) {
    the_set_insert(e.id);
    g_bytes += e.wire_size;
  }
  if (g.empty()) return;  // proofs-only batch: no epoch (see DESIGN.md)

  cpu_acquire(params().costs.hash_cost(g_bytes) + params().costs.sign);
  EpochProof p = consolidate(g, st.consolidate_block_time);
  if (!proof_already_published(p.epoch)) collector_.add_proof(std::move(p));
}

}  // namespace setchain::core
