#include "core/batch_store.hpp"

namespace setchain::core {

void BatchStore::put(const EpochHash& h, BatchPtr batch, codec::Bytes serialized) {
  auto [it, inserted] = batches_.try_emplace(h);
  if (!inserted) return;  // already registered (idempotent)
  stored_bytes_ += batch->wire_size();
  it->second.batch = std::move(batch);
  it->second.serialized = std::move(serialized);
  if (on_put_) on_put_(h, *it->second.batch, it->second.serialized);
}

BatchPtr BatchStore::find(const EpochHash& h) const {
  auto it = batches_.find(h);
  return it == batches_.end() ? nullptr : it->second.batch;
}

void BatchStore::erase(const EpochHash& h) {
  auto it = batches_.find(h);
  if (it == batches_.end()) return;
  stored_bytes_ -= it->second.batch->wire_size();
  batches_.erase(it);
}

const codec::Bytes* BatchStore::find_serialized(const EpochHash& h) const {
  auto it = batches_.find(h);
  if (it == batches_.end() || it->second.serialized.empty()) return nullptr;
  return &it->second.serialized;
}

}  // namespace setchain::core
