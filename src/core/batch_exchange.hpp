#pragma once

#include "core/batch.hpp"
#include "core/proofs.hpp"
#include "sim/time.hpp"

namespace setchain::core {

/// Transport seam for Hashchain's batch-exchange service (Request_batch /
/// batch response, §3). The algorithm only decides *what* to ask whom; an
/// IBatchExchange decides *how* the messages travel:
///
///  * unset (null in ServerContext): the in-process pointer paths are used —
///    the simulated Network when sim/net are wired, or the synchronous
///    direct-call path of the InstantLedger unit tests;
///  * net::NodeHost implements it over a real transport (wire frames routed
///    through an ITransport backend — in-process loopback or TCP sockets),
///    which is how a live cluster resolves hashes it cannot reverse.
///
/// Both calls are fire-and-forget: loss is legal (the requester's fetch
/// timeout and retry/backoff machinery owns recovery), which is exactly the
/// guarantee a real datagram-or-dropped-connection network gives.
class IBatchExchange {
 public:
  virtual ~IBatchExchange() = default;

  /// Deliver a Request_batch(h) from `requester` to `holder` (a server that
  /// signed h). The holder answers through its own exchange — or stays
  /// silent (crashed, Byzantine, or the request got lost in transit).
  /// `wire_bytes` is the request's modeled wire size (transport accounting).
  virtual void send_request(crypto::ProcessId requester, crypto::ProcessId holder,
                            const EpochHash& h, std::uint64_t wire_bytes) = 0;

  /// Deliver the batch behind `h` back to `requester`. `serialized` may be
  /// null in calibrated fidelity; full-fidelity responses always travel as
  /// bytes and are re-parsed and re-hashed by the receiver (the responder
  /// may be Byzantine). `ready_at` is when the serving CPU finishes
  /// (responses leave no earlier; real-time backends treat it as "now").
  virtual void send_response(crypto::ProcessId responder, crypto::ProcessId requester,
                             const EpochHash& h, BatchPtr batch,
                             const codec::Bytes* serialized, sim::Time ready_at) = 0;
};

}  // namespace setchain::core
