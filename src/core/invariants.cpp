#include "core/invariants.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

namespace setchain::core {

std::string InvariantReport::to_string() const {
  std::ostringstream os;
  for (const auto& v : violations) os << v << '\n';
  return os.str();
}

namespace {
void violate(InvariantReport& r, const std::string& msg) { r.violations.push_back(msg); }

std::string sid(const SetchainServer* s) {
  return "server " + std::to_string(s->id());
}
}  // namespace

InvariantReport check_safety(const std::vector<const SetchainServer*>& servers) {
  InvariantReport report;

  for (const auto* s : servers) {
    const auto snap = s->get();

    // P1: every epoch's elements are in the_set.
    for (const auto& rec : *snap.history) {
      for (const auto id : rec.ids) {
        if (!snap.the_set->contains(id)) {
          violate(report, "P1 Consistent-Sets: " + sid(s) + " epoch " +
                              std::to_string(rec.number) + " element " +
                              std::to_string(id) + " not in the_set");
        }
      }
    }

    // P5: pairwise-disjoint epochs (single pass: ids may appear once).
    std::unordered_set<ElementId> seen;
    for (const auto& rec : *snap.history) {
      for (const auto id : rec.ids) {
        if (!seen.insert(id).second) {
          violate(report, "P5 Unique-Epoch: " + sid(s) + " element " +
                              std::to_string(id) + " in two epochs");
        }
      }
    }

    // history indexing sanity (epoch i stored at i-1).
    if (snap.history->size() != snap.epoch) {
      violate(report, "internal: " + sid(s) + " history size " +
                          std::to_string(snap.history->size()) + " != epoch " +
                          std::to_string(snap.epoch));
    }
  }

  // P6: identical epoch contents across servers up to min(h, h').
  for (std::size_t a = 0; a < servers.size(); ++a) {
    for (std::size_t b = a + 1; b < servers.size(); ++b) {
      const auto sa = servers[a]->get();
      const auto sb = servers[b]->get();
      const std::size_t upto = std::min(sa.history->size(), sb.history->size());
      for (std::size_t i = 0; i < upto; ++i) {
        const auto& ra = (*sa.history)[i];
        const auto& rb = (*sb.history)[i];
        if (ra.ids != rb.ids) {
          violate(report, "P6 Consistent-Gets: epoch " + std::to_string(i + 1) +
                              " differs between " + sid(servers[a]) + " and " +
                              sid(servers[b]));
        }
        if (ra.hash != rb.hash) {
          violate(report, "P6 Consistent-Gets: epoch hash " + std::to_string(i + 1) +
                              " differs between " + sid(servers[a]) + " and " +
                              sid(servers[b]));
        }
      }
    }
  }
  return report;
}

InvariantReport check_liveness_quiescent(
    const std::vector<const SetchainServer*>& servers,
    const std::vector<ElementId>& accepted_valid_elements, const SetchainParams& params,
    const crypto::Pki& pki) {
  InvariantReport report;

  for (const auto* s : servers) {
    const auto snap = s->get();
    // P2/P3: accepted valid elements are in every correct server's the_set.
    for (const auto id : accepted_valid_elements) {
      if (!snap.the_set->contains(id)) {
        violate(report, "P2/P3 Add-Get/Get-Global: element " + std::to_string(id) +
                            " missing from the_set of " + sid(s));
      }
    }
    // P4: ... and in history.
    std::unordered_set<ElementId> in_history;
    for (const auto& rec : *snap.history) {
      in_history.insert(rec.ids.begin(), rec.ids.end());
    }
    for (const auto id : accepted_valid_elements) {
      if (!in_history.contains(id)) {
        violate(report, "P4 Eventual-Get: element " + std::to_string(id) +
                            " not in history of " + sid(s));
      }
    }
    // P8: f+1 valid proofs per epoch, from distinct servers. Reads the raw
    // proof store from the same white-box snapshot as the history — the
    // client-facing proofs_for_epoch() accessor goes dark on a down server
    // while get() keeps exposing the real state for inspection.
    for (const auto& rec : *snap.history) {
      std::unordered_set<crypto::ProcessId> provers;
      for (const auto& p : (*snap.proofs)[rec.number - 1]) {
        if (valid_proof(p, rec.hash, pki, params.fidelity)) provers.insert(p.server);
      }
      if (provers.size() < params.f + 1) {
        violate(report, "P8 Valid-Epoch: " + sid(s) + " epoch " +
                            std::to_string(rec.number) + " has only " +
                            std::to_string(provers.size()) + " valid proofs (need " +
                            std::to_string(params.f + 1) + ")");
      }
    }
  }
  return report;
}

InvariantReport check_cross_algorithm(const std::vector<AlgoRun>& runs) {
  InvariantReport report;
  if (runs.size() < 2) return report;

  // (a) Identical consolidated sets.
  const auto consolidated = [](const std::vector<EpochRecord>& history) {
    std::unordered_set<ElementId> ids;
    for (const auto& rec : history) ids.insert(rec.ids.begin(), rec.ids.end());
    return ids;
  };
  const auto base = consolidated(*runs[0].history);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const auto other = consolidated(*runs[i].history);
    std::size_t reported = 0;
    for (const auto id : base) {
      if (!other.contains(id) && reported++ < 5) {
        violate(report, "P9 Cross-Algorithm: element " + std::to_string(id) +
                            " consolidated by " + runs[0].name + " but not by " +
                            runs[i].name);
      }
    }
    for (const auto id : other) {
      if (!base.contains(id) && reported++ < 5) {
        violate(report, "P9 Cross-Algorithm: element " + std::to_string(id) +
                            " consolidated by " + runs[i].name + " but not by " +
                            runs[0].name);
      }
    }
    if (reported > 5) {
      violate(report, "P9 Cross-Algorithm: ... and " + std::to_string(reported - 5) +
                          " more set differences between " + runs[0].name + " and " +
                          runs[i].name);
    }
  }

  // (b) Hash purity: identical (number, ids) -> identical hash, everywhere.
  struct Content {
    EpochHash hash;
    std::string run;
  };
  std::map<std::pair<std::uint64_t, std::vector<ElementId>>, Content> by_content;
  for (const auto& run : runs) {
    for (const auto& rec : *run.history) {
      const auto key = std::make_pair(rec.number, rec.ids);
      const auto [it, inserted] = by_content.emplace(key, Content{rec.hash, run.name});
      if (!inserted && it->second.hash != rec.hash) {
        violate(report, "P9 Cross-Algorithm: epoch " + std::to_string(rec.number) +
                            " has identical contents in " + it->second.run + " and " +
                            run.name + " but different canonical hashes");
      }
    }
  }
  return report;
}

InvariantReport check_add_before_get(
    const std::vector<const SetchainServer*>& servers,
    const std::unordered_set<ElementId>& all_created) {
  InvariantReport report;
  for (const auto* s : servers) {
    const auto snap = s->get();
    for (const auto id : *snap.the_set) {
      if (!all_created.contains(id)) {
        violate(report, "P7 Add-before-Get: " + sid(s) + " holds element " +
                            std::to_string(id) + " that no client created");
      }
    }
  }
  return report;
}

}  // namespace setchain::core
