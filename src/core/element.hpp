#pragma once

#include <cstdint>
#include <optional>

#include "codec/byte_io.hpp"
#include "codec/bytes.hpp"
#include "core/config.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/pki.hpp"
#include "workload/arbitrum_like.hpp"

namespace setchain::core {

/// Globally unique element identifier: (client id << 40) | per-client seq.
using ElementId = std::uint64_t;

constexpr ElementId make_element_id(crypto::ProcessId client, std::uint64_t seq) {
  return (static_cast<ElementId>(client) << 40) | (seq & ((std::uint64_t{1} << 40) - 1));
}
constexpr crypto::ProcessId element_client(ElementId id) {
  return static_cast<crypto::ProcessId>(id >> 40);
}

/// A Setchain element: client-created, signed content (the paper replays
/// Arbitrum transactions as elements). `wire_size` is the serialized length;
/// in calibrated fidelity the payload bytes stay virtual.
struct Element {
  ElementId id = 0;
  crypto::ProcessId client = 0;
  std::uint32_t wire_size = 0;

  // Full fidelity only:
  codec::Bytes payload;
  crypto::Ed25519::Signature sig{};

  // Calibrated fidelity: precomputed validity (signature checked by flag,
  // CPU time still charged through CostModel).
  bool valid_flag = true;

  bool operator==(const Element& o) const { return id == o.id; }
};

/// Fixed serialization overhead on top of the payload: tag(1) + id(8) +
/// client(4) + payload length prefix(varint<=4) + signature(64).
constexpr std::uint32_t kElementOverhead = 1 + 8 + 4 + 4 + 64;
constexpr std::uint8_t kElementTag = 0x01;

void serialize_element(codec::Writer& w, const Element& e);
std::optional<Element> parse_element(codec::Reader& r);

/// The paper's valid_element(e): syntactic well-formedness plus client
/// signature over the payload (only authenticated valid elements are
/// processed by correct servers; servers cannot forge them).
bool valid_element(const Element& e, const crypto::Pki& pki, Fidelity fidelity);

/// Batched valid_element over a block's worth of elements: the syntactic
/// checks run per element, but all client signatures are verified with ONE
/// Ed25519 batch check (full fidelity), amortizing the curve arithmetic
/// across the block. result[i] == valid_element(es[i], ...) for every i.
std::vector<bool> valid_elements(const std::vector<Element>& es, const crypto::Pki& pki,
                                 Fidelity fidelity);

/// 8-byte content digest used in canonical epoch hashes. Full fidelity:
/// first bytes of SHA-512(payload); calibrated: splitmix of the id.
std::uint64_t element_digest(const Element& e, Fidelity fidelity);

/// Creates elements on behalf of simulated clients: samples the
/// Arbitrum-like size distribution and (in full fidelity) materializes and
/// signs the payload with the client's PKI key.
class ElementFactory {
 public:
  ElementFactory(workload::ArbitrumLikeGenerator& gen, crypto::Pki& pki,
                 Fidelity fidelity);

  Element make(crypto::ProcessId client, std::uint64_t seq);

  /// A malformed element (bad signature / corrupt payload) as a Byzantine
  /// client would produce. Correct servers must reject it.
  Element make_invalid(crypto::ProcessId client, std::uint64_t seq);

  std::uint64_t created() const { return created_; }

 private:
  workload::ArbitrumLikeGenerator& gen_;
  crypto::Pki& pki_;
  Fidelity fidelity_;
  std::uint64_t created_ = 0;
};

}  // namespace setchain::core
