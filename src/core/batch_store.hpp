#pragma once

#include <functional>
#include <unordered_map>

#include "core/batch.hpp"

namespace setchain::core {

/// Hasher for 64-byte batch/epoch hashes used as map keys.
struct EpochHashHasher {
  std::size_t operator()(const EpochHash& h) const {
    // The hash is already uniform; fold the first 8 bytes.
    std::size_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | h[static_cast<std::size_t>(i)];
    return v;
  }
};

/// Per-server hash -> batch storage backing Hashchain's Register_batch /
/// Request_batch service (§3): irreversible hashes on the ledger are
/// resolved back to batch contents by asking a server that signed them.
/// In full fidelity the serialized bytes are kept so responses travel (and
/// are re-verified) exactly as on a real wire.
class BatchStore {
 public:
  /// Register_batch(h, batch).
  void put(const EpochHash& h, BatchPtr batch, codec::Bytes serialized = {});

  BatchPtr find(const EpochHash& h) const;
  const codec::Bytes* find_serialized(const EpochHash& h) const;
  bool contains(const EpochHash& h) const { return batches_.contains(h); }
  std::size_t size() const { return batches_.size(); }

  /// Drop a batch's contents (bounded-memory operation: lean high-rate runs
  /// prune consolidated batches, like Narwhal-style mempool GC). No-op when
  /// absent.
  void erase(const EpochHash& h);

  /// Lose everything (crash with wiped state).
  void clear() {
    batches_.clear();
    stored_bytes_ = 0;
  }

  /// Total bytes of stored batch content (memory footprint diagnostics).
  std::uint64_t stored_bytes() const { return stored_bytes_; }

  /// Observer fired on every first-time put (idempotent re-puts don't
  /// fire). The durable-storage layer hooks WAL batch records here —
  /// installed only after recovery replay so restored batches are not
  /// re-logged. `serialized` may be empty (sim paths without wire bytes).
  using OnPut = std::function<void(const EpochHash& h, const Batch& batch,
                                   const codec::Bytes& serialized)>;
  void set_on_put(OnPut fn) { on_put_ = std::move(fn); }

  /// Iterate all entries (snapshot serialization). `serialized` may be
  /// empty for sim-path batches.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [h, entry] : batches_) fn(h, *entry.batch, entry.serialized);
  }

 private:
  OnPut on_put_;
  struct Entry {
    BatchPtr batch;
    codec::Bytes serialized;
  };
  std::unordered_map<EpochHash, Entry, EpochHashHasher> batches_;
  std::uint64_t stored_bytes_ = 0;
};

}  // namespace setchain::core
