#include "core/proofs.hpp"

#include "sim/rng.hpp"

namespace setchain::core {

EpochHash epoch_hash(std::uint64_t epoch,
                     const std::vector<std::pair<ElementId, std::uint64_t>>& id_digests,
                     Fidelity fidelity) {
  if (fidelity == Fidelity::kFull) {
    crypto::Sha512 h;
    codec::Writer w;
    w.u64le(epoch);
    w.varint(id_digests.size());
    for (const auto& [id, digest] : id_digests) {
      w.u64le(id);
      w.u64le(digest);
    }
    return crypto::Sha512::hash(w.buffer());
  }
  // Calibrated: cheap deterministic mixing of the same inputs.
  std::uint64_t acc = 0x5E7C4A1E ^ epoch;
  for (const auto& [id, digest] : id_digests) {
    std::uint64_t s = acc ^ id ^ (digest * 0x9E3779B97F4A7C15ULL);
    acc = sim::splitmix64(s);
  }
  EpochHash out{};
  std::uint64_t s = acc;
  for (std::size_t i = 0; i < out.size(); i += 8) {
    const std::uint64_t v = sim::splitmix64(s);
    for (std::size_t j = 0; j < 8; ++j) out[i + j] = static_cast<std::uint8_t>(v >> (8 * j));
  }
  return out;
}

namespace {
/// Fixed 139-byte frame: tag(1) ver(1) epoch(4) server(2) reserved(3)
/// hash(64) sig(64).
void write_frame139(codec::Writer& w, std::uint8_t tag, std::uint32_t word,
                    std::uint16_t server, const EpochHash& hash,
                    const crypto::Ed25519::Signature& sig) {
  w.u8(tag);
  w.u8(1);  // version
  w.u32le(word);
  w.u8(static_cast<std::uint8_t>(server));
  w.u8(static_cast<std::uint8_t>(server >> 8));
  w.u8(0).u8(0).u8(0);  // reserved
  w.bytes(codec::ByteView(hash.data(), hash.size()));
  w.bytes(codec::ByteView(sig.data(), sig.size()));
}

struct Frame139 {
  std::uint32_t word;
  std::uint16_t server;
  EpochHash hash;
  crypto::Ed25519::Signature sig;
};

std::optional<Frame139> read_frame139(codec::Reader& r) {
  // Caller consumed the tag.
  Frame139 f;
  const auto ver = r.u8();
  if (!ver || *ver != 1) return std::nullopt;
  const auto word = r.u32le();
  const auto s0 = r.u8();
  const auto s1 = r.u8();
  if (!word || !s0 || !s1) return std::nullopt;
  if (!r.u8() || !r.u8() || !r.u8()) return std::nullopt;  // reserved
  const auto hash = r.bytes(64);
  const auto sig = r.bytes(64);
  if (!hash || !sig) return std::nullopt;
  f.word = *word;
  f.server = static_cast<std::uint16_t>(*s0 | (*s1 << 8));
  std::copy(hash->begin(), hash->end(), f.hash.begin());
  std::copy(sig->begin(), sig->end(), f.sig.begin());
  return f;
}
}  // namespace

void serialize_epoch_proof(codec::Writer& w, const EpochProof& p) {
  write_frame139(w, kEpochProofTag, static_cast<std::uint32_t>(p.epoch),
                 static_cast<std::uint16_t>(p.server), p.epoch_hash, p.sig);
}

std::optional<EpochProof> parse_epoch_proof(codec::Reader& r) {
  const auto f = read_frame139(r);
  if (!f) return std::nullopt;
  EpochProof p;
  p.epoch = f->word;
  p.server = f->server;
  p.epoch_hash = f->hash;
  p.sig = f->sig;
  return p;
}

EpochProof make_epoch_proof(const crypto::Pki& pki, crypto::ProcessId server,
                            std::uint64_t epoch, const EpochHash& hash,
                            Fidelity fidelity) {
  EpochProof p;
  p.epoch = epoch;
  p.server = server;
  p.epoch_hash = hash;
  if (fidelity == Fidelity::kFull) {
    p.sig = pki.sign(server, codec::ByteView(hash.data(), hash.size()));
  }
  return p;
}

bool valid_proof(const EpochProof& p, const EpochHash& expected,
                 const crypto::Pki& pki, Fidelity fidelity, SigCheck presig) {
  if (p.epoch_hash != expected) return false;
  if (fidelity == Fidelity::kCalibrated) return p.valid_flag;
  if (presig != SigCheck::kUnchecked) return presig == SigCheck::kValid;
  return pki.verify(p.server, codec::ByteView(p.epoch_hash.data(), p.epoch_hash.size()),
                    p.sig);
}

void serialize_hash_batch(codec::Writer& w, const HashBatchMsg& hb) {
  write_frame139(w, kHashBatchTag, 0, static_cast<std::uint16_t>(hb.server), hb.hash,
                 hb.sig);
}

std::optional<HashBatchMsg> parse_hash_batch(codec::Reader& r) {
  const auto f = read_frame139(r);
  if (!f) return std::nullopt;
  HashBatchMsg hb;
  hb.server = f->server;
  hb.hash = f->hash;
  hb.sig = f->sig;
  return hb;
}

HashBatchMsg make_hash_batch(const crypto::Pki& pki, crypto::ProcessId server,
                             const EpochHash& h, Fidelity fidelity) {
  HashBatchMsg hb;
  hb.hash = h;
  hb.server = server;
  if (fidelity == Fidelity::kFull) {
    hb.sig = pki.sign(server, codec::ByteView(h.data(), h.size()));
  }
  return hb;
}

bool valid_hash_batch(const HashBatchMsg& hb, const crypto::Pki& pki, Fidelity fidelity,
                      SigCheck presig) {
  if (fidelity == Fidelity::kCalibrated) return hb.valid_flag;
  if (presig != SigCheck::kUnchecked) return presig == SigCheck::kValid;
  return pki.verify(hb.server, codec::ByteView(hb.hash.data(), hb.hash.size()), hb.sig);
}

std::vector<SigCheck> batch_check_proof_sigs(const std::vector<EpochProof>& ps,
                                             const crypto::Pki& pki, Fidelity fidelity) {
  std::vector<SigCheck> out(ps.size(), SigCheck::kUnchecked);
  if (fidelity != Fidelity::kFull || ps.size() < 2) return out;
  std::vector<crypto::Pki::SignedMessage> items;
  items.reserve(ps.size());
  for (const auto& p : ps) {
    items.push_back(crypto::Pki::SignedMessage{
        p.server, codec::ByteView(p.epoch_hash.data(), p.epoch_hash.size()), &p.sig});
  }
  const auto res = pki.verify_batch(items);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    out[i] = res.valid[i] ? SigCheck::kValid : SigCheck::kInvalid;
  }
  return out;
}

std::vector<SigCheck> batch_check_hash_batch_sigs(const std::vector<HashBatchMsg>& hbs,
                                                  const crypto::Pki& pki,
                                                  Fidelity fidelity) {
  std::vector<SigCheck> out(hbs.size(), SigCheck::kUnchecked);
  if (fidelity != Fidelity::kFull || hbs.size() < 2) return out;
  std::vector<crypto::Pki::SignedMessage> items;
  items.reserve(hbs.size());
  for (const auto& hb : hbs) {
    items.push_back(crypto::Pki::SignedMessage{
        hb.server, codec::ByteView(hb.hash.data(), hb.hash.size()), &hb.sig});
  }
  const auto res = pki.verify_batch(items);
  for (std::size_t i = 0; i < hbs.size(); ++i) {
    out[i] = res.valid[i] ? SigCheck::kValid : SigCheck::kInvalid;
  }
  return out;
}

}  // namespace setchain::core
