#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "sim/fault.hpp"
#include "workload/arbitrum_like.hpp"

namespace setchain::runner {

enum class Algorithm : std::uint8_t { kVanilla, kCompresschain, kHashchain };

const char* algorithm_name(Algorithm a);

/// Inverse of algorithm_name, case-insensitive ("hashchain" == "Hashchain").
/// Unknown names yield nullopt. parse_algorithm(algorithm_name(a)) == a for
/// every Algorithm.
std::optional<Algorithm> parse_algorithm(std::string_view name);

/// Ordering layer of a LIVE deployment (net::NodeHost daemons over a real
/// transport). kFixedSequencer is the fast single-ordering-node default for
/// benches; kConsensus runs the wire-level consensus port (rotating
/// proposers, round skips, vote quorums) and keeps committing with up to f
/// crashed nodes — the f-tolerance the paper's properties assume. The DES
/// Experiment always simulates the full CometbftSim and ignores this knob.
enum class LedgerMode : std::uint8_t { kFixedSequencer, kConsensus };

const char* ledger_mode_name(LedgerMode m);

/// Inverse of ledger_mode_name, case-insensitive ("sequencer"/"consensus").
std::optional<LedgerMode> parse_ledger_mode(std::string_view name);

/// Complete description of one experiment run: the Table-1 parameter grid
/// plus fidelity/measurement knobs. Defaults mirror the paper's base
/// scenario (10 servers, 10,000 el/s, no added delay, 0.5 MB blocks at
/// 0.8 blocks/s).
struct Scenario {
  Algorithm algorithm = Algorithm::kHashchain;

  // Table 1 parameters.
  std::uint32_t n = 10;                        ///< server_count
  double sending_rate = 10'000.0;              ///< total el/s, all clients
  std::uint32_t collector_limit = 100;         ///< collector size (entries)
  sim::Time network_delay = 0;                 ///< artificial extra delay

  /// Byzantine bound used for the f+1 thresholds. Defaults to the CometBFT
  /// bound floor((n-1)/3) the deployment actually tolerates.
  std::optional<std::uint32_t> f;

  sim::Time add_duration = sim::from_seconds(50);  ///< clients add for 50 s
  sim::Time horizon = sim::from_seconds(300);      ///< hard stop
  sim::Time collector_timeout = sim::from_seconds(1);

  core::Fidelity fidelity = core::Fidelity::kCalibrated;
  bool validate_batches = true;  ///< Compresschain: decompress+validate
  bool hash_reversal = true;  ///< Hashchain: reversal service
  std::uint32_t hashchain_committee = 0;  ///< §H ablation: 0 = all sign
  bool lean_state = false;    ///< drop per-element sets (highest rates)
  bool per_element_metrics = false;  ///< per-element stage latencies (Fig. 4)
  bool track_ids = false;            ///< keep accepted-id lists (invariant tests)

  std::uint64_t seed = 20250911;

  // Ledger configuration (§4: CometBFT, 1.25 s blocks, 0.5 MB).
  sim::Time block_interval = sim::from_seconds(1.25);
  std::uint64_t block_bytes = 500'000;
  /// Live-deployment ordering layer (see LedgerMode; ignored by the DES
  /// Experiment, which always simulates the full consensus).
  LedgerMode ledger_mode = LedgerMode::kFixedSequencer;

  // Fault injection: application-level Byzantine behaviours...
  std::vector<std::uint32_t> byz_silent_proposers;
  std::vector<std::uint32_t> byz_refuse_batch;
  std::vector<std::uint32_t> byz_corrupt_proofs;
  std::vector<std::uint32_t> byz_fake_hashes;
  double client_invalid_fraction = 0.0;
  bool clients_duplicate_to_all = false;
  // ... plus the network/process fault schedule (message drops, partitions,
  // delay spikes, crash/restart), executed by the sim fault layer. NOTE on
  // liveness: elements accepted only by a server that later crashes can be
  // lost with its collector — scenarios asserting full liveness under crash
  // faults should set clients_duplicate_to_all so every element reaches a
  // correct server (the paper's Byzantine-client-proof submission).
  sim::FaultPlan faults;

  workload::ArbitrumLikeConfig workload_cfg;
  core::CostModel costs;

  std::uint32_t f_value() const { return f ? *f : (n - 1) / 3; }

  /// Parameter-sanity check: one message per violated constraint, empty when
  /// the scenario is runnable. Rejects f above the deployment's Byzantine
  /// bound floor((n-1)/3), non-positive rates/durations, committees larger
  /// than the cluster, fault injections aimed at nonexistent nodes, ...
  /// Experiment and api::ScenarioBuilder::build() enforce it.
  std::vector<std::string> validate() const;

  /// Materialize the SetchainParams handed to servers. `measured_ratio` is
  /// the szx compression ratio measured on sample batches at startup.
  core::SetchainParams make_params(double measured_ratio) const;
};

/// Pass-through gate: returns `s` unchanged, or throws std::invalid_argument
/// listing every validate() violation. Experiment construction and
/// api::ScenarioBuilder::build() both go through here.
Scenario throw_if_invalid(Scenario s);

}  // namespace setchain::runner
