#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace setchain::runner {

/// Parallel map over an index range with a fixed worker pool.
///
/// The benchmark sweeps (Fig. 3 / Fig. 5 / Table 2 grids) run dozens of
/// *independent* simulations; each Experiment owns all of its state (kernel,
/// network, PKI, recorder), so running them on separate threads is safe and
/// cuts wall time by ~#cores. Results are written to pre-sized slots, so no
/// synchronization beyond the work-stealing counter is needed.
///
/// `fn(i)` must be thread-safe with respect to other indices (pure w.r.t.
/// shared state). Exceptions propagate: the first one observed is rethrown
/// after all workers join.
template <typename Result>
std::vector<Result> parallel_map(std::size_t count,
                                 const std::function<Result(std::size_t)>& fn,
                                 unsigned max_workers = 0) {
  std::vector<Result> results(count);
  if (count == 0) return results;

  unsigned workers = max_workers ? max_workers : std::thread::hardware_concurrency();
  if (workers == 0) workers = 2;
  workers = static_cast<unsigned>(std::min<std::size_t>(workers, count));

  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        results[i] = fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace setchain::runner
