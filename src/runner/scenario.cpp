#include "runner/scenario.hpp"

namespace setchain::runner {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kVanilla:
      return "Vanilla";
    case Algorithm::kCompresschain:
      return "Compresschain";
    case Algorithm::kHashchain:
      return "Hashchain";
  }
  return "?";
}

core::SetchainParams Scenario::make_params(double measured_ratio) const {
  core::SetchainParams p;
  p.n = n;
  p.f = f_value();
  p.collector_limit = collector_limit;
  p.collector_timeout = collector_timeout;
  p.fidelity = fidelity;
  p.validate = validate;
  p.hash_reversal = hash_reversal;
  p.hashchain_committee = hashchain_committee;
  p.lean_state = lean_state;
  p.calibrated_compress_ratio = measured_ratio;
  p.costs = costs;
  return p;
}

}  // namespace setchain::runner
