#include "runner/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <utility>

namespace setchain::runner {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kVanilla:
      return "Vanilla";
    case Algorithm::kCompresschain:
      return "Compresschain";
    case Algorithm::kHashchain:
      return "Hashchain";
  }
  return "?";
}

std::optional<Algorithm> parse_algorithm(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "vanilla") return Algorithm::kVanilla;
  if (lower == "compresschain") return Algorithm::kCompresschain;
  if (lower == "hashchain") return Algorithm::kHashchain;
  return std::nullopt;
}

const char* ledger_mode_name(LedgerMode m) {
  switch (m) {
    case LedgerMode::kFixedSequencer:
      return "sequencer";
    case LedgerMode::kConsensus:
      return "consensus";
  }
  return "?";
}

std::optional<LedgerMode> parse_ledger_mode(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "sequencer") return LedgerMode::kFixedSequencer;
  if (lower == "consensus") return LedgerMode::kConsensus;
  return std::nullopt;
}

std::vector<std::string> Scenario::validate() const {
  std::vector<std::string> errors;
  const auto reject = [&errors](std::string msg) { errors.push_back(std::move(msg)); };

  if (n == 0) reject("n must be >= 1 server");
  if (n > 0 && f_value() > (n - 1) / 3) {
    reject("f=" + std::to_string(f_value()) + " exceeds the Byzantine bound floor((n-1)/3)=" +
           std::to_string((n - 1) / 3) + " for n=" + std::to_string(n));
  }
  if (sending_rate <= 0) reject("sending_rate must be > 0 el/s");
  if (collector_limit == 0) reject("collector_limit must be >= 1 entry");
  if (network_delay < 0) reject("network_delay must be >= 0");
  if (add_duration <= 0) reject("add_duration must be > 0");
  if (horizon < add_duration) reject("horizon must cover the add_duration");
  if (collector_timeout < 0) reject("collector_timeout must be >= 0");
  if (hashchain_committee > n) {
    reject("hashchain_committee=" + std::to_string(hashchain_committee) +
           " exceeds the cluster size n=" + std::to_string(n));
  }
  if (block_interval <= 0) reject("block_interval must be > 0");
  if (block_bytes == 0) reject("block_bytes must be > 0");
  if (client_invalid_fraction < 0.0 || client_invalid_fraction > 1.0) {
    reject("client_invalid_fraction must be within [0, 1]");
  }

  const auto check_nodes = [&](const std::vector<std::uint32_t>& nodes,
                               const char* what) {
    for (const auto node : nodes) {
      if (node >= n) {
        reject(std::string(what) + " targets node " + std::to_string(node) +
               " outside 0.." + std::to_string(n == 0 ? 0 : n - 1));
      }
    }
  };
  check_nodes(byz_silent_proposers, "byz_silent_proposers");
  check_nodes(byz_refuse_batch, "byz_refuse_batch");
  check_nodes(byz_corrupt_proofs, "byz_corrupt_proofs");
  check_nodes(byz_fake_hashes, "byz_fake_hashes");

  if (algorithm == Algorithm::kHashchain && !hash_reversal && !faults.empty()) {
    reject(
        "hashchain light mode (hash_reversal=false) assumes a perfect "
        "dissemination layer and cannot be combined with a fault plan");
  }
  for (auto& msg : faults.validate(n)) errors.push_back(std::move(msg));
  return errors;
}

Scenario throw_if_invalid(Scenario s) {
  const auto errors = s.validate();
  if (!errors.empty()) {
    std::string msg = "invalid scenario:";
    for (const auto& e : errors) msg += "\n  - " + e;
    throw std::invalid_argument(msg);
  }
  return s;
}

core::SetchainParams Scenario::make_params(double measured_ratio) const {
  core::SetchainParams p;
  p.n = n;
  p.f = f_value();
  p.collector_limit = collector_limit;
  p.collector_timeout = collector_timeout;
  p.fidelity = fidelity;
  p.validate = validate_batches;
  p.hash_reversal = hash_reversal;
  p.hashchain_committee = hashchain_committee;
  p.lean_state = lean_state;
  p.calibrated_compress_ratio = measured_ratio;
  p.costs = costs;
  return p;
}

}  // namespace setchain::runner
