#pragma once

#include <string>
#include <vector>

#include "metrics/series.hpp"
#include "runner/experiment.hpp"

namespace setchain::runner {

/// Plain-text reporting helpers shared by the benchmark binaries: each bench
/// prints the rows/series of one paper table or figure.

void print_title(const std::string& title);
void print_subtitle(const std::string& subtitle);

/// Fixed-width table. `rows` are preformatted cells.
void print_table(const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows);

/// Throughput-over-time series (Fig. 1 style), decimated to ~`max_rows`.
void print_rate_series(const std::string& name,
                       const std::vector<metrics::StepSeries::RatePoint>& series,
                       std::size_t max_rows = 30);

/// CDF (Fig. 4 style): prints latency at fixed quantiles.
void print_cdf_quantiles(const std::string& name, const std::vector<double>& samples);

std::string fmt_double(double v, int precision = 1);
std::string fmt_rate(double els_per_s);
std::string fmt_eff(double eff);
std::string fmt_opt_seconds(const std::optional<double>& s);

/// One-line run summary (diagnostics appended to every bench).
void print_run_summary(const Scenario& s, const RunResult& r);

}  // namespace setchain::runner
