#include "runner/report.hpp"

#include <algorithm>
#include <cstdio>

#include "metrics/stats.hpp"

namespace setchain::runner {

void print_title(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void print_subtitle(const std::string& subtitle) {
  std::printf("\n--- %s ---\n", subtitle.c_str());
}

void print_table(const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t i = 0; i < headers.size(); ++i) widths[i] = headers[i].size();
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      std::printf(" %-*s |", static_cast<int>(widths[i]), c.c_str());
    }
    std::printf("\n");
  };
  print_row(headers);
  std::printf("|");
  for (const auto w : widths) {
    for (std::size_t i = 0; i < w + 2; ++i) std::printf("-");
    std::printf("|");
  }
  std::printf("\n");
  for (const auto& row : rows) print_row(row);
}

void print_rate_series(const std::string& name,
                       const std::vector<metrics::StepSeries::RatePoint>& series,
                       std::size_t max_rows) {
  std::printf("%s (t [s] -> el/s):\n", name.c_str());
  if (series.empty()) {
    std::printf("  (empty)\n");
    return;
  }
  const std::size_t stride = std::max<std::size_t>(1, series.size() / max_rows);
  for (std::size_t i = 0; i < series.size(); i += stride) {
    std::printf("  %6.1f  %12.1f\n", series[i].t_seconds, series[i].rate);
  }
}

void print_cdf_quantiles(const std::string& name, const std::vector<double>& samples) {
  std::printf("%s latency CDF [s] (n=%zu):\n", name.c_str(), samples.size());
  if (samples.empty()) {
    std::printf("  (no samples)\n");
    return;
  }
  static constexpr double kQ[] = {0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.00};
  std::printf(" ");
  for (const double q : kQ) std::printf("   p%-3.0f", q * 100);
  std::printf("\n ");
  for (const double q : kQ) {
    std::printf(" %6.2f", metrics::percentile(samples, q));
  }
  std::printf("\n");
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_rate(double els_per_s) {
  char buf[64];
  if (els_per_s >= 100'000) {
    std::snprintf(buf, sizeof buf, "%.0f", els_per_s);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f", els_per_s);
  }
  return buf;
}

std::string fmt_eff(double eff) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", eff);
  return buf;
}

std::string fmt_opt_seconds(const std::optional<double>& s) {
  if (!s) return "-";
  return fmt_double(*s, 1);
}

void print_run_summary(const Scenario& s, const RunResult& r) {
  std::printf(
      "  [%s n=%u rate=%.0f c=%u delay=%.0fms] added=%llu committed=%llu epochs=%llu "
      "blocks=%llu ratio=%.2f sim=%.0fs wall=%.0fms events=%llu\n",
      algorithm_name(s.algorithm), s.n, s.sending_rate, s.collector_limit,
      sim::to_millis(s.network_delay), static_cast<unsigned long long>(r.elements_added),
      static_cast<unsigned long long>(r.elements_committed),
      static_cast<unsigned long long>(r.epochs),
      static_cast<unsigned long long>(r.blocks), r.measured_compress_ratio,
      r.sim_seconds, r.wall_ms, static_cast<unsigned long long>(r.events));
  if (r.net_dropped > 0) {
    std::printf("  [faults] messages dropped in flight: %llu of %llu sent\n",
                static_cast<unsigned long long>(r.net_dropped),
                static_cast<unsigned long long>(r.net_messages));
  }
}

}  // namespace setchain::runner
