#include "runner/experiment.hpp"

#include <algorithm>
#include <chrono>

#include "codec/lz77.hpp"

namespace setchain::runner {

double Experiment::measure_compress_ratio(const workload::ArbitrumLikeConfig& cfg,
                                          std::uint32_t limit, std::uint64_t seed) {
  // Build a few full-fidelity sample batches (payload bytes, dummy
  // signatures — the codec only sees entropy, not validity) and measure the
  // real szx ratio, exactly what calibrated runs then charge per batch.
  workload::ArbitrumLikeGenerator gen(seed ^ 0xCA71B8A7EULL, cfg);
  double total_raw = 0.0, total_comp = 0.0;
  std::uint64_t next_id = 1;
  for (int sample = 0; sample < 3; ++sample) {
    core::Batch b;
    for (std::uint32_t i = 0; i < limit; ++i) {
      core::Element e;
      e.id = next_id++;
      e.client = 0;
      const std::uint32_t target = gen.sample_size();
      const std::uint32_t payload =
          target > core::kElementOverhead ? target - core::kElementOverhead : 16;
      e.payload = gen.make_payload(e.id, payload);
      e.wire_size = target;
      b.elements.push_back(std::move(e));
    }
    const codec::Bytes raw = core::serialize_batch(b);
    const codec::Bytes comp = codec::lz77_compress(raw);
    total_raw += static_cast<double>(raw.size());
    total_comp += static_cast<double>(comp.size());
  }
  return total_comp > 0 ? total_raw / total_comp : 1.0;
}

Experiment::Experiment(Scenario scenario)
    : scenario_(throw_if_invalid(std::move(scenario))),
      measured_ratio_(measure_compress_ratio(scenario_.workload_cfg,
                                             scenario_.collector_limit, scenario_.seed)),
      params_(scenario_.make_params(measured_ratio_)) {
  const std::uint32_t n = scenario_.n;

  sim_ = std::make_unique<sim::Simulation>();

  sim::NetworkConfig net_cfg;
  net_cfg.extra_delay = scenario_.network_delay;
  net_ = std::make_unique<sim::Network>(*sim_, n, net_cfg, scenario_.seed ^ 0x4E7ULL);
  if (!scenario_.faults.empty()) {
    net_->install_faults(scenario_.faults, scenario_.seed ^ 0xFA017ULL);
  }

  cpus_.resize(n);

  pki_ = std::make_unique<crypto::Pki>(scenario_.seed);
  for (std::uint32_t i = 0; i < n; ++i) pki_->register_process(i);
  for (std::uint32_t i = 0; i < n; ++i) pki_->register_process(n + i);  // clients

  recorder_ = std::make_shared<metrics::StageRecorder>(metrics::StageRecorder::Config{
      n, scenario_.f_value(), scenario_.per_element_metrics});

  gen_ = std::make_unique<workload::ArbitrumLikeGenerator>(scenario_.seed,
                                                           scenario_.workload_cfg);
  factory_ = std::make_unique<core::ElementFactory>(*gen_, *pki_, scenario_.fidelity);

  // --- ledger ---
  ledger::ConsensusConfig lcfg;
  lcfg.n = n;
  lcfg.block_interval = scenario_.block_interval;
  lcfg.max_block_bytes = scenario_.block_bytes;

  ledger::LedgerHooks hooks;
  const core::CostModel& costs = scenario_.costs;
  hooks.check_tx_cost = [costs](const ledger::Transaction& tx) {
    return costs.check_tx_cost(tx.wire_size);
  };
  hooks.check_tx = [fidelity = scenario_.fidelity](const ledger::Transaction& tx) {
    if (fidelity == core::Fidelity::kCalibrated) {
      return tx.kind != ledger::TxKind::kOpaque && tx.app != nullptr;
    }
    if (tx.data.empty()) return false;
    const std::uint8_t b0 = tx.data[0];
    return b0 == core::kElementTag || b0 == core::kEpochProofTag ||
           b0 == core::kHashBatchTag || b0 == 'S' /* SZX1 compressed batch */;
  };
  if (scenario_.per_element_metrics) {
    hooks.on_mempool_add = [this](sim::NodeId node, ledger::TxIdx idx, sim::Time t) {
      const auto it = tx_elements_.find(idx);
      if (it == tx_elements_.end()) return;
      for (const auto eid : it->second) recorder_->on_mempool_arrival(eid, node, t);
    };
  }
  ledger_ = std::make_unique<ledger::CometbftSim>(*sim_, *net_, cpus_, lcfg,
                                                  std::move(hooks));
  for (const auto node : scenario_.byz_silent_proposers) {
    ledger::LedgerByzantineConfig b;
    b.silent_proposer = true;
    ledger_->set_byzantine(node, b);
  }

  // --- servers ---
  core::ServerContext ctx;
  ctx.sim = sim_.get();
  ctx.net = net_.get();
  ctx.ledger = ledger_.get();
  ctx.pki = pki_.get();
  ctx.cpus = &cpus_;
  ctx.recorder = recorder_.get();
  ctx.params = &params_;
  if (scenario_.per_element_metrics) {
    ctx.register_tx_elements = [this](ledger::TxIdx idx,
                                      const std::vector<core::ElementId>& ids) {
      if (!ids.empty()) tx_elements_.emplace(idx, ids);
    };
  }

  std::vector<core::HashchainServer*> hash_servers;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::unique_ptr<core::SetchainServer> s;
    switch (scenario_.algorithm) {
      case Algorithm::kVanilla: {
        auto v = std::make_unique<core::VanillaServer>(ctx, i);
        ledger_->on_new_block(i, [p = v.get()](const ledger::Block& b) {
          p->on_new_block(b);
        });
        s = std::move(v);
        break;
      }
      case Algorithm::kCompresschain: {
        auto c = std::make_unique<core::CompresschainServer>(ctx, i);
        ledger_->on_new_block(i, [p = c.get()](const ledger::Block& b) {
          p->on_new_block(b);
        });
        s = std::move(c);
        break;
      }
      case Algorithm::kHashchain: {
        auto h = std::make_unique<core::HashchainServer>(ctx, i);
        ledger_->on_new_block(i, [p = h.get()](const ledger::Block& b) {
          p->on_new_block(b);
        });
        hash_servers.push_back(h.get());
        s = std::move(h);
        break;
      }
    }
    servers_.push_back(std::move(s));
  }
  if (!hash_servers.empty()) {
    // Peer vector indexed by server id (dense 0..n-1 here).
    std::vector<core::HashchainServer*> peers(n, nullptr);
    for (auto* h : hash_servers) peers[h->id()] = h;
    for (auto* h : hash_servers) h->connect_peers(peers);
  }
  for (const auto node : scenario_.byz_refuse_batch) {
    auto b = servers_[node]->byzantine();
    b.refuse_batch_service = true;
    servers_[node]->set_byzantine(b);
  }
  for (const auto node : scenario_.byz_corrupt_proofs) {
    auto b = servers_[node]->byzantine();
    b.corrupt_proofs = true;
    servers_[node]->set_byzantine(b);
  }
  for (const auto node : scenario_.byz_fake_hashes) {
    auto b = servers_[node]->byzantine();
    b.fake_hash_batches = true;
    servers_[node]->set_byzantine(b);
  }

  // --- clients (one per node, rate split evenly, like the paper) ---
  // Each rate-driver fronts the whole cluster through the quorum facade:
  // primary = its co-located server, broadcasting instead when the scenario
  // asks for duplicate-to-all Byzantine clients.
  const auto policy = scenario_.clients_duplicate_to_all ? api::WritePolicy::kAll
                                                         : api::WritePolicy::kPrimary;
  for (std::uint32_t i = 0; i < n; ++i) {
    core::SetchainClient::Config ccfg;
    ccfg.rate_el_per_s = scenario_.sending_rate / static_cast<double>(n);
    ccfg.add_duration = scenario_.add_duration;
    ccfg.invalid_fraction = scenario_.client_invalid_fraction;
    if (scenario_.track_ids) {
      ccfg.accepted_sink = &accepted_valid_ids_;
      ccfg.created_sink = &created_ids_;
    }
    clients_.push_back(std::make_unique<core::SetchainClient>(
        *sim_, n + i, make_client(policy, i), *factory_, recorder_.get(), ccfg,
        scenario_.seed));
  }

  // --- crash/restart schedule ---
  // The fault layer handles the *network* face of a crash (messages to and
  // from a down node are lost); these events drive the *process* face: the
  // server refuses service, loses its collector, and — on a wiped restart —
  // rebuilds its consolidated state by replaying the ledger. Events are
  // sorted chronologically (restart before crash on ties, so back-to-back
  // windows hand over cleanly) — the plan's list order must not matter.
  struct CrashEvent {
    sim::Time at;
    bool is_restart;
    std::uint32_t node;
    bool wipe;
  };
  std::vector<CrashEvent> crash_events;
  for (const auto& flt : scenario_.faults.faults) {
    if (flt.kind != sim::FaultKind::kCrash) continue;
    crash_events.push_back({flt.start, false, flt.from, flt.wipe_state});
    if (flt.heals()) crash_events.push_back({flt.end, true, flt.from, flt.wipe_state});
  }
  std::stable_sort(crash_events.begin(), crash_events.end(),
                   [](const CrashEvent& a, const CrashEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.is_restart && !b.is_restart;
                   });
  for (const auto& ev : crash_events) {
    if (ev.is_restart) {
      sim_->schedule_at(ev.at, [this, node = ev.node, wipe = ev.wipe] {
        const std::uint64_t resume =
            wipe ? 1 : servers_[node]->applied_height() + 1;
        servers_[node]->restart();
        ledger_->replay_range(node, resume);
      });
    } else {
      sim_->schedule_at(ev.at, [this, node = ev.node, wipe = ev.wipe] {
        servers_[node]->crash(wipe);
      });
    }
  }
}

api::QuorumClient Experiment::make_client(api::WritePolicy policy, std::size_t primary) {
  return api::make_quorum_client(servers_, *pki_, params_.f, params_.fidelity, policy,
                                 primary);
}

Experiment::~Experiment() = default;

bool Experiment::is_byzantine(std::uint32_t node) const {
  const auto in = [node](const std::vector<std::uint32_t>& v) {
    return std::find(v.begin(), v.end(), node) != v.end();
  };
  if (in(scenario_.byz_silent_proposers) || in(scenario_.byz_refuse_batch) ||
      in(scenario_.byz_corrupt_proofs) || in(scenario_.byz_fake_hashes)) {
    return true;
  }
  // Crash-faulted servers give no guarantees either (a healed crash usually
  // recovers fully — tests wanting to assert that inspect servers() direct).
  for (const auto& flt : scenario_.faults.faults) {
    if (flt.kind == sim::FaultKind::kCrash && flt.from == node) return true;
  }
  return false;
}

std::vector<core::SetchainServer*> Experiment::servers() {
  std::vector<core::SetchainServer*> out;
  for (auto& s : servers_) out.push_back(s.get());
  return out;
}

std::vector<const core::SetchainServer*> Experiment::correct_servers() const {
  std::vector<const core::SetchainServer*> out;
  for (std::uint32_t i = 0; i < scenario_.n; ++i) {
    if (!is_byzantine(i)) out.push_back(servers_[i].get());
  }
  return out;
}

void Experiment::run() {
  const auto t0 = std::chrono::steady_clock::now();
  ledger_->start();
  for (auto& c : clients_) c->start();
  sim_->run_until(scenario_.horizon);
  const auto t1 = std::chrono::steady_clock::now();
  wall_ms_ = std::chrono::duration<double, std::milli>(t1 - t0).count();
}

RunResult Experiment::result() const {
  RunResult r;
  r.elements_added = recorder_->added().total();
  r.elements_committed = recorder_->committed().total();
  r.epochs = recorder_->epochs_consolidated();
  r.blocks = ledger_->height();
  // "Average throughput achieved up to 50 s" (Table 2). When a run uses a
  // shortened add window (bench quick mode), the window shrinks with it.
  const sim::Time window = std::min(scenario_.add_duration, sim::from_seconds(50));
  r.avg_throughput_50s =
      window > 0 ? static_cast<double>(recorder_->committed().count_until(window)) /
                       sim::to_seconds(window)
                 : 0.0;
  if (const auto& ev = recorder_->committed().events(); !ev.empty()) {
    const double span = sim::to_seconds(ev.back().t);
    if (span > 0) {
      r.sustained_throughput =
          static_cast<double>(recorder_->committed().total()) / span;
    }
  }
  r.efficiency_50 = recorder_->efficiency_at(sim::from_seconds(50));
  r.efficiency_75 = recorder_->efficiency_at(sim::from_seconds(75));
  r.efficiency_100 = recorder_->efficiency_at(sim::from_seconds(100));
  r.measured_compress_ratio = measured_ratio_;
  r.sim_seconds = sim::to_seconds(sim_->now());
  r.wall_ms = wall_ms_;
  r.events = sim_->executed_events();
  r.net_messages = net_->messages_sent();
  r.net_bytes = net_->bytes_sent();
  r.net_dropped = net_->messages_dropped();
  return r;
}

RunResult run_scenario(const Scenario& scenario) {
  Experiment e(scenario);
  e.run();
  return e.result();
}

}  // namespace setchain::runner
