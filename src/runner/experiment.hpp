#pragma once

#include <memory>

#include "core/client.hpp"
#include "core/compresschain.hpp"
#include "core/hashchain.hpp"
#include "core/invariants.hpp"
#include "core/vanilla.hpp"
#include "ledger/consensus.hpp"
#include "runner/scenario.hpp"

namespace setchain::runner {

/// Aggregated outcome of one run, carrying everything the paper's tables and
/// figures report.
struct RunResult {
  std::uint64_t elements_added = 0;
  std::uint64_t elements_committed = 0;
  std::uint64_t epochs = 0;
  std::uint64_t blocks = 0;

  double avg_throughput_50s = 0.0;  ///< Table 2: committed by 50 s / 50 s
  /// committed / time-of-last-commit: the sustainable drain rate, which for
  /// stressed runs reads the ledger-bound capacity instead of the end burst.
  double sustained_throughput = 0.0;
  double efficiency_50 = 0.0;  ///< Fig. 3 bars
  double efficiency_75 = 0.0;
  double efficiency_100 = 0.0;

  double measured_compress_ratio = 0.0;
  double sim_seconds = 0.0;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  std::uint64_t net_messages = 0;
  std::uint64_t net_bytes = 0;
  std::uint64_t net_dropped = 0;  ///< messages lost to the fault layer
};

/// Owns and wires one complete simulated deployment: n docker-style nodes,
/// each with a CometBFT ledger node, a Setchain server, and a rate-driven
/// client — the paper's evaluation platform (§4) in DES form.
class Experiment {
 public:
  /// Throws std::invalid_argument when scenario.validate() rejects the
  /// parameters (build scenarios through api::ScenarioBuilder to fail early).
  explicit Experiment(Scenario scenario);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Run to the horizon (or natural quiescence, whichever first).
  void run();

  RunResult result() const;

  // Introspection for tests and examples.
  sim::Simulation& simulation() { return *sim_; }
  sim::Network& network() { return *net_; }
  ledger::CometbftSim& ledger() { return *ledger_; }
  metrics::StageRecorder& recorder() { return *recorder_; }
  crypto::Pki& pki() { return *pki_; }
  const Scenario& scenario() const { return scenario_; }
  const core::SetchainParams& params() const { return params_; }

  /// Message-level fault counters, or null when the scenario has no faults.
  const sim::FaultInjector* fault_injector() const { return net_->faults(); }

  std::vector<core::SetchainServer*> servers();
  /// Servers not configured with any Byzantine behaviour and not targeted by
  /// a crash fault — the set the Setchain properties are stated over.
  std::vector<const core::SetchainServer*> correct_servers() const;
  core::SetchainServer& server(std::uint32_t i) { return *servers_[i]; }
  core::SetchainClient& client(std::uint32_t i) { return *clients_[i]; }

  /// A quorum client over all n servers — the paper's client protocol
  /// (Byzantine-tolerant add/get/verify), with f and fidelity taken from
  /// the scenario. This is the supported way for examples and tests to talk
  /// to the deployment; server(i) remains for white-box introspection.
  api::QuorumClient make_client(api::WritePolicy policy = api::WritePolicy::kPrimary,
                                std::size_t primary = 0);

  /// Ids of valid elements accepted by correct servers (requires
  /// scenario.track_ids); input to the liveness invariant checks.
  const std::vector<core::ElementId>& accepted_valid_ids() const {
    return accepted_valid_ids_;
  }
  /// Every id any client ever created (for P7 Add-before-Get).
  const std::unordered_set<core::ElementId>& created_ids() const { return created_ids_; }

  /// Measure the szx codec ratio on sample batches of `limit` elements.
  static double measure_compress_ratio(const workload::ArbitrumLikeConfig& cfg,
                                       std::uint32_t limit, std::uint64_t seed);

 private:
  bool is_byzantine(std::uint32_t node) const;

  Scenario scenario_;
  double measured_ratio_;
  core::SetchainParams params_;

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<sim::Network> net_;
  std::vector<sim::BusyResource> cpus_;
  std::unique_ptr<crypto::Pki> pki_;
  std::shared_ptr<metrics::StageRecorder> recorder_;
  std::unique_ptr<workload::ArbitrumLikeGenerator> gen_;
  std::unique_ptr<core::ElementFactory> factory_;
  std::unique_ptr<ledger::CometbftSim> ledger_;
  std::vector<std::unique_ptr<core::SetchainServer>> servers_;
  std::vector<std::unique_ptr<core::SetchainClient>> clients_;

  std::unordered_map<ledger::TxIdx, std::vector<core::ElementId>> tx_elements_;
  std::vector<core::ElementId> accepted_valid_ids_;
  std::unordered_set<core::ElementId> created_ids_;

  double wall_ms_ = 0.0;
};

/// One-shot convenience used by the benchmark binaries.
RunResult run_scenario(const Scenario& scenario);

}  // namespace setchain::runner
