#include "crypto/bigint.hpp"

namespace setchain::crypto {

U512 mul_256(const U256& a, const U256& b) {
  U512 r;
  for (std::size_t i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      carry += static_cast<unsigned __int128>(a.w[i]) * b.w[j] + r.w[i + j];
      r.w[i + j] = static_cast<std::uint64_t>(carry);
      carry >>= 64;
    }
    r.w[i + 4] = static_cast<std::uint64_t>(carry);
  }
  return r;
}

U256 mod_512(const U512& x, const U256& m) {
  // Widen the modulus to 512 bits and do binary long division.
  U512 rem = x;
  U512 mod;
  for (std::size_t i = 0; i < 4; ++i) mod.w[i] = m.w[i];

  const std::size_t xb = rem.bit_length();
  const std::size_t mb = mod.bit_length();
  if (mb == 0) return U256::zero();  // degenerate; callers never pass m == 0
  if (xb >= mb) {
    for (std::size_t shift = xb - mb + 1; shift-- > 0;) {
      const U512 shifted = mod.shl(shift);
      if (rem >= shifted) rem.sub_in_place(shifted);
    }
  }
  U256 out;
  for (std::size_t i = 0; i < 4; ++i) out.w[i] = rem.w[i];
  return out;
}

U256 muladd_mod(const U256& a, const U256& b, const U256& c, const U256& m) {
  U512 prod = mul_256(a, b);
  // prod += c
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    carry += static_cast<unsigned __int128>(prod.w[i]) + (i < 4 ? c.w[i] : 0);
    prod.w[i] = static_cast<std::uint64_t>(carry);
    carry >>= 64;
  }
  return mod_512(prod, m);
}

}  // namespace setchain::crypto
