#include "crypto/ed25519.hpp"

#include "crypto/bigint.hpp"
#include "crypto/ge25519.hpp"
#include "crypto/sha512.hpp"

namespace setchain::crypto {

namespace {

/// Group order L = 2^252 + 27742317777372353535851937790883648493.
const U256& order_l() {
  static const U256 kL = [] {
    U256 l;
    l.w[0] = 0x5812631A5CF5D3EDULL;
    l.w[1] = 0x14DEF9DEA2F79CD6ULL;
    l.w[2] = 0;
    l.w[3] = 0x1000000000000000ULL;
    return l;
  }();
  return kL;
}

U256 scalar_from_hash512(const Sha512::Digest& h) {
  const U512 wide = U512::from_bytes_le(codec::ByteView(h.data(), h.size()));
  return mod_512(wide, order_l());
}

struct ExpandedSecret {
  U256 a;  ///< clamped scalar
  std::array<std::uint8_t, 32> prefix;
};

ExpandedSecret expand(const Ed25519::Seed& seed) {
  auto h = Sha512::hash(codec::ByteView(seed.data(), seed.size()));
  h[0] &= 248;
  h[31] &= 127;
  h[31] |= 64;
  ExpandedSecret out;
  out.a = U256::from_bytes_le(codec::ByteView(h.data(), 32));
  std::copy(h.begin() + 32, h.end(), out.prefix.begin());
  return out;
}

}  // namespace

Ed25519::PublicKey Ed25519::public_key(const Seed& seed) {
  const auto secret = expand(seed);
  return Ge::base().scalar_mul(secret.a).compress();
}

Ed25519::Signature Ed25519::sign(const Seed& seed, const PublicKey& pub,
                                 codec::ByteView message) {
  const auto secret = expand(seed);

  Sha512 r_hash;
  r_hash.update(codec::ByteView(secret.prefix.data(), secret.prefix.size()));
  r_hash.update(message);
  const U256 r = scalar_from_hash512(r_hash.finalize());

  const auto r_enc = Ge::base().scalar_mul(r).compress();

  Sha512 k_hash;
  k_hash.update(codec::ByteView(r_enc.data(), r_enc.size()));
  k_hash.update(codec::ByteView(pub.data(), pub.size()));
  k_hash.update(message);
  const U256 k = scalar_from_hash512(k_hash.finalize());

  // S = (r + k*a) mod L
  const U256 s = muladd_mod(k, secret.a, r, order_l());
  const auto s_enc = s.to_bytes_le<32>();

  Signature sig;
  std::copy(r_enc.begin(), r_enc.end(), sig.begin());
  std::copy(s_enc.begin(), s_enc.end(), sig.begin() + 32);
  return sig;
}

bool Ed25519::verify(const PublicKey& pub, codec::ByteView message, const Signature& sig) {
  const codec::ByteView r_bytes(sig.data(), 32);
  const U256 s = U256::from_bytes_le(codec::ByteView(sig.data() + 32, 32));
  if (!(s < order_l())) return false;  // non-canonical S (malleability guard)

  const auto a_pt = Ge::decompress(codec::ByteView(pub.data(), pub.size()));
  if (!a_pt) return false;
  const auto r_pt = Ge::decompress(r_bytes);
  if (!r_pt) return false;

  Sha512 k_hash;
  k_hash.update(r_bytes);
  k_hash.update(codec::ByteView(pub.data(), pub.size()));
  k_hash.update(message);
  const U256 k = scalar_from_hash512(k_hash.finalize());

  // Check S*B == R + k*A  <=>  S*B + k*(-A) == R.
  const Ge sb = Ge::base().scalar_mul(s);
  const Ge ka = a_pt->negate().scalar_mul(k);
  const auto lhs = sb.add(ka).compress();
  for (std::size_t i = 0; i < 32; ++i) {
    if (lhs[i] != r_bytes[i]) return false;
  }
  return true;
}

}  // namespace setchain::crypto
