#include "crypto/ed25519.hpp"

#include <algorithm>
#include <map>

#include "crypto/bigint.hpp"
#include "crypto/ge25519.hpp"
#include "crypto/sha512.hpp"
#include "util/thread_pool.hpp"

namespace setchain::crypto {

namespace {

/// Group order L = 2^252 + 27742317777372353535851937790883648493.
const U256& order_l() {
  static const U256 kL = [] {
    U256 l;
    l.w[0] = 0x5812631A5CF5D3EDULL;
    l.w[1] = 0x14DEF9DEA2F79CD6ULL;
    l.w[2] = 0;
    l.w[3] = 0x1000000000000000ULL;
    return l;
  }();
  return kL;
}

/// Reduction mod L specialized to its sparse shape: L = 2^252 + c with the
/// 125-bit constant c, so 2^252 == -c (mod L) and x = hi*2^252 + lo == lo -
/// c*hi. Each step shrinks x by ~127 bits; four steps bring any 512-bit
/// value under 2^252, with a sign flag tracking the alternating
/// subtraction. Replaces the generic binary long division (~256 shift/
/// compare rounds) on the batch-verification hot path.
U256 reduce_mod_l(U512 x) {
  static const U512 kC = [] {  // c = L - 2^252
    U512 c;
    c.w[0] = 0x5812631A5CF5D3EDULL;
    c.w[1] = 0x14DEF9DEA2F79CD6ULL;
    return c;
  }();

  bool neg = false;
  for (;;) {
    // hi = x >> 252 (< 2^260), lo = x mod 2^252.
    U512 hi;
    for (std::size_t i = 0; i < 5; ++i) {
      hi.w[i] = (x.w[i + 3] >> 60) | (i + 4 < 8 ? x.w[i + 4] << 4 : 0);
    }
    if (hi.is_zero()) break;
    U512 lo = x;
    lo.w[3] &= (std::uint64_t{1} << 60) - 1;
    for (std::size_t i = 4; i < 8; ++i) lo.w[i] = 0;

    // prod = c * hi: 2 x 5 words, < 2^385 — never overflows 512 bits.
    U512 prod;
    for (std::size_t i = 0; i < 2; ++i) {
      unsigned __int128 carry = 0;
      for (std::size_t j = 0; j < 6; ++j) {
        carry += static_cast<unsigned __int128>(kC.w[i]) * hi.w[j] + prod.w[i + j];
        prod.w[i + j] = static_cast<std::uint64_t>(carry);
        carry >>= 64;
      }
    }

    if (lo >= prod) {
      lo.sub_in_place(prod);
      x = lo;
    } else {
      prod.sub_in_place(lo);
      x = prod;
      neg = !neg;
    }
  }

  U256 r;
  for (std::size_t i = 0; i < 4; ++i) r.w[i] = x.w[i];  // x < 2^252 < L
  if (neg && !r.is_zero()) {
    U256 l = order_l();
    l.sub_in_place(r);
    r = l;
  }
  return r;
}

/// (a*b + c) mod L through the specialized reduction.
U256 mul_add_mod_l(const U256& a, const U256& b, const U256& c) {
  U512 prod = mul_256(a, b);
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    carry += static_cast<unsigned __int128>(prod.w[i]) + (i < 4 ? c.w[i] : 0);
    prod.w[i] = static_cast<std::uint64_t>(carry);
    carry >>= 64;
  }
  return reduce_mod_l(prod);
}

U256 scalar_from_hash512(const Sha512::Digest& h) {
  return reduce_mod_l(U512::from_bytes_le(codec::ByteView(h.data(), h.size())));
}

struct ExpandedSecret {
  U256 a;  ///< clamped scalar
  std::array<std::uint8_t, 32> prefix;
};

ExpandedSecret expand(const Ed25519::Seed& seed) {
  auto h = Sha512::hash(codec::ByteView(seed.data(), seed.size()));
  h[0] &= 248;
  h[31] &= 127;
  h[31] |= 64;
  ExpandedSecret out;
  out.a = U256::from_bytes_le(codec::ByteView(h.data(), 32));
  std::copy(h.begin() + 32, h.end(), out.prefix.begin());
  return out;
}

}  // namespace

Ed25519::PublicKey Ed25519::public_key(const Seed& seed) {
  const auto secret = expand(seed);
  return Ge::base_scalar_mul(secret.a).compress();
}

Ed25519::Signature Ed25519::sign(const Seed& seed, const PublicKey& pub,
                                 codec::ByteView message) {
  const auto secret = expand(seed);

  Sha512 r_hash;
  r_hash.update(codec::ByteView(secret.prefix.data(), secret.prefix.size()));
  r_hash.update(message);
  const U256 r = scalar_from_hash512(r_hash.finalize());

  const auto r_enc = Ge::base_scalar_mul(r).compress();

  Sha512 k_hash;
  k_hash.update(codec::ByteView(r_enc.data(), r_enc.size()));
  k_hash.update(codec::ByteView(pub.data(), pub.size()));
  k_hash.update(message);
  const U256 k = scalar_from_hash512(k_hash.finalize());

  // S = (r + k*a) mod L
  const U256 s = mul_add_mod_l(k, secret.a, r);
  const auto s_enc = s.to_bytes_le<32>();

  Signature sig;
  std::copy(r_enc.begin(), r_enc.end(), sig.begin());
  std::copy(s_enc.begin(), s_enc.end(), sig.begin() + 32);
  return sig;
}

bool Ed25519::verify(const PublicKey& pub, codec::ByteView message, const Signature& sig) {
  const codec::ByteView r_bytes(sig.data(), 32);
  const U256 s = U256::from_bytes_le(codec::ByteView(sig.data() + 32, 32));
  if (!(s < order_l())) return false;  // non-canonical S (malleability guard)

  const auto a_pt = Ge::decompress(codec::ByteView(pub.data(), pub.size()));
  if (!a_pt) return false;
  const auto r_pt = Ge::decompress(r_bytes);
  if (!r_pt) return false;

  Sha512 k_hash;
  k_hash.update(r_bytes);
  k_hash.update(codec::ByteView(pub.data(), pub.size()));
  k_hash.update(message);
  const U256 k = scalar_from_hash512(k_hash.finalize());

  // Check S*B == R + k*A  <=>  S*B + k*(-A) == R, as one interleaved
  // double-scalar multiplication.
  const Ge::ScalarPoint term{k, a_pt->negate()};
  const auto lhs = Ge::multi_scalar_mul(s, std::span(&term, 1)).compress();
  for (std::size_t i = 0; i < 32; ++i) {
    if (lhs[i] != r_bytes[i]) return false;
  }
  return true;
}

namespace {

/// Per-entry state shared by the combined check and its bisection: points
/// decompressed and scalars derived once per batch, reused by every
/// sub-check.
struct PreparedEntry {
  Ge neg_a;   ///< -A
  Ge neg_r;   ///< -R
  U256 s;     ///< signature scalar
  U256 k;     ///< H(R || A || M) mod L
  bool pre_ok = false;
};

/// Decompressed (and negated) public keys, shared across the batch: Setchain
/// blocks carry many signatures from a bounded signer set (n servers, a
/// recurring client population), so each distinct key pays its two field
/// exponentiations once per batch instead of once per signature.
using PubCache = std::map<Ed25519::PublicKey, std::optional<Ge>>;

PreparedEntry prepare_entry(const Ed25519::BatchEntry& e, PubCache& pub_cache) {
  PreparedEntry out;
  const codec::ByteView r_bytes(e.sig->data(), 32);
  out.s = U256::from_bytes_le(codec::ByteView(e.sig->data() + 32, 32));
  if (!(out.s < order_l())) return out;  // non-canonical S

  auto [cached, inserted] = pub_cache.try_emplace(*e.pub);
  if (inserted) {
    const auto a_pt = Ge::decompress(codec::ByteView(e.pub->data(), e.pub->size()));
    if (a_pt) cached->second = a_pt->negate();
  }
  if (!cached->second) return out;  // key not a curve point
  const auto r_pt = Ge::decompress(r_bytes);
  if (!r_pt) return out;
  // Scalar `verify` compares the recomputed point against the R *bytes*, so
  // a non-canonically encoded R (y >= p) always fails there; reject it here
  // too, otherwise the batch path (which works on the decompressed point)
  // would disagree.
  const auto canonical_y = Fe::from_bytes(r_bytes).to_bytes();
  for (std::size_t i = 0; i < 32; ++i) {
    const std::uint8_t want = i == 31 ? (canonical_y[i] | (r_bytes[i] & 0x80)) : canonical_y[i];
    if (r_bytes[i] != want) return out;
  }

  Sha512 k_hash;
  k_hash.update(r_bytes);
  k_hash.update(codec::ByteView(e.pub->data(), e.pub->size()));
  k_hash.update(e.message);
  out.k = scalar_from_hash512(k_hash.finalize());
  out.neg_a = *cached->second;
  out.neg_r = r_pt->negate();
  out.pre_ok = true;
  return out;
}

/// Combined random-linear-combination check over a subset of the batch:
///   (sum z_i*S_i)*B + sum z_i*(-R_i) + sum (z_i*k_i)*(-A_i) == identity.
/// The z_i are 128-bit scalars derived from a SHA-512 transcript of the
/// subset's full (R, S, A, message) tuples, keyed per entry by its index
/// within the subset — deterministic, so the same batch always produces the
/// same combination. The transcript MUST absorb the S halves: if the z_i
/// depended only on (R, A, M), an adversary could pick them first and then
/// doctor two valid signatures as S1+z2 / S2-z1, preserving sum z_i*S_i
/// while making both individually invalid.
bool combined_check(std::span<const Ed25519::BatchEntry> entries,
                    const std::vector<PreparedEntry>& prepared,
                    const std::vector<std::size_t>& subset) {
  Sha512 transcript;
  transcript.update(codec::to_bytes("setchain.ed25519.batch.v1"));
  codec::Bytes count;
  codec::append_u64le(count, subset.size());
  transcript.update(count);
  for (const std::size_t i : subset) {
    const auto& e = entries[i];
    transcript.update(codec::ByteView(e.sig->data(), e.sig->size()));  // R and S
    transcript.update(codec::ByteView(e.pub->data(), e.pub->size()));
    codec::Bytes len;
    codec::append_u64le(len, e.message.size());
    transcript.update(len);
    transcript.update(e.message);
  }
  const auto seed = transcript.finalize();

  U256 base_scalar = U256::zero();
  std::vector<Ge::ScalarPoint> terms;
  terms.reserve(2 * subset.size());
  for (std::size_t j = 0; j < subset.size(); ++j) {
    const PreparedEntry& p = prepared[subset[j]];
    Sha512 zh;
    zh.update(codec::ByteView(seed.data(), seed.size()));
    codec::Bytes idx;
    codec::append_u64le(idx, j);
    zh.update(idx);
    const auto zd = zh.finalize();
    // 128-bit randomizers: standard for ed25519 batching (2^-128 soundness)
    // and half the NAF length of a full scalar for the R_i terms.
    U256 z = U256::from_bytes_le(codec::ByteView(zd.data(), 16));
    if (z.is_zero()) z = U256::from_u64(1);

    base_scalar = mul_add_mod_l(z, p.s, base_scalar);
    terms.push_back(Ge::ScalarPoint{z, p.neg_r});
    terms.push_back(Ge::ScalarPoint{mul_add_mod_l(z, p.k, U256::zero()), p.neg_a});
  }
  return Ge::multi_scalar_mul(base_scalar, terms).is_identity();
}

/// Bisection fallback: a failing subset is split until the culprits are
/// pinned down by scalar verification, which keeps the result exactly equal
/// to per-signature `verify` even in the (negligible-probability) corner
/// cases a random combination could mask.
void bisect(std::span<const Ed25519::BatchEntry> entries,
            const std::vector<PreparedEntry>& prepared, std::vector<std::size_t> subset,
            std::vector<bool>& valid) {
  if (subset.empty()) return;
  if (subset.size() == 1) {
    const auto& e = entries[subset[0]];
    valid[subset[0]] = Ed25519::verify(*e.pub, e.message, *e.sig);
    return;
  }
  if (combined_check(entries, prepared, subset)) {
    for (const std::size_t i : subset) valid[i] = true;
    return;
  }
  const std::size_t mid = subset.size() / 2;
  bisect(entries, prepared,
         std::vector<std::size_t>(subset.begin(), subset.begin() + static_cast<std::ptrdiff_t>(mid)),
         valid);
  bisect(entries, prepared,
         std::vector<std::size_t>(subset.begin() + static_cast<std::ptrdiff_t>(mid), subset.end()),
         valid);
}

/// One shard's worth of batch verification (the pre-sharding verify_batch
/// body). `valid` is sized to the shard and all-false on entry.
void verify_shard(std::span<const Ed25519::BatchEntry> entries,
                  std::vector<bool>& valid, bool& all_valid) {
  if (entries.size() == 1) {
    valid[0] = Ed25519::verify(*entries[0].pub, entries[0].message, *entries[0].sig);
    all_valid = valid[0];
    return;
  }

  std::vector<PreparedEntry> prepared;
  prepared.reserve(entries.size());
  std::vector<std::size_t> candidates;
  candidates.reserve(entries.size());
  PubCache pub_cache;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    prepared.push_back(prepare_entry(entries[i], pub_cache));
    if (prepared.back().pre_ok) candidates.push_back(i);
  }

  // One combined check when everything is fine; bisection (inside `bisect`)
  // takes over only on failure.
  bisect(entries, prepared, candidates, valid);
  all_valid = candidates.size() == entries.size();
  for (const std::size_t i : candidates) all_valid = all_valid && valid[i];
}

/// Entries below which a shard is not worth a transcript + MSM of its own:
/// the MSM's amortization flattens out around this batch size, so slicing
/// finer just repeats fixed costs.
constexpr std::size_t kMinShardEntries = 64;

}  // namespace

Ed25519::BatchResult Ed25519::verify_batch(std::span<const BatchEntry> entries) {
  std::size_t shards = 1;
  const std::size_t workers = util::ThreadPool::global().workers();
  if (workers > 0 && entries.size() >= 2 * kMinShardEntries) {
    shards = std::min(workers + 1, entries.size() / kMinShardEntries);
  }
  return verify_batch_sharded(entries, shards);
}

Ed25519::BatchResult Ed25519::verify_batch_sharded(std::span<const BatchEntry> entries,
                                                   std::size_t shards) {
  BatchResult res;
  res.valid.assign(entries.size(), false);
  if (entries.empty()) {
    res.all_valid = true;
    return res;
  }
  shards = std::max<std::size_t>(1, std::min(shards, entries.size()));

  if (shards == 1) {
    bool all = false;
    verify_shard(entries, res.valid, all);
    res.all_valid = all;
    return res;
  }

  // Contiguous split. Each shard writes a LOCAL verdict vector (vector<bool>
  // packs bits — concurrent writes to neighboring indices of a shared one
  // would race) merged in order after the parallel_for barrier.
  struct ShardOut {
    std::vector<bool> valid;
    bool all_valid = false;
  };
  std::vector<ShardOut> outs(shards);
  const std::size_t base = entries.size() / shards;
  const std::size_t extra = entries.size() % shards;
  const auto shard_begin = [&](std::size_t s) {
    return s * base + std::min(s, extra);
  };
  util::ThreadPool::global().parallel_for(shards, [&](std::size_t s) {
    const std::size_t begin = shard_begin(s);
    const std::size_t len = shard_begin(s + 1) - begin;
    ShardOut& o = outs[s];
    o.valid.assign(len, false);
    verify_shard(entries.subspan(begin, len), o.valid, o.all_valid);
  });

  res.all_valid = true;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t begin = shard_begin(s);
    for (std::size_t i = 0; i < outs[s].valid.size(); ++i) {
      res.valid[begin + i] = outs[s].valid[i];
    }
    res.all_valid = res.all_valid && outs[s].all_valid;
  }
  return res;
}

}  // namespace setchain::crypto
