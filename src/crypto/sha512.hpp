#pragma once

#include <array>
#include <cstdint>

#include "codec/bytes.hpp"

namespace setchain::crypto {

/// SHA-512 (FIPS 180-4), the hash the paper uses for epoch hashes and
/// hash-batches. Implemented from scratch; validated against NIST vectors.
class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha512();
  void update(codec::ByteView data);
  Digest finalize();

  static Digest hash(codec::ByteView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint64_t, 8> state_;
  std::array<std::uint8_t, 128> buffer_;
  std::size_t buffer_len_ = 0;
  // 128-bit message length counter per FIPS 180-4; low word is enough for
  // any realistic input but we keep both for spec fidelity.
  std::uint64_t total_lo_ = 0;
  std::uint64_t total_hi_ = 0;
};

}  // namespace setchain::crypto
