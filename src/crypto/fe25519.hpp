#pragma once

#include <array>
#include <cstdint>

#include "codec/bytes.hpp"

namespace setchain::crypto {

/// Field element of GF(2^255 - 19) in 5 radix-2^51 limbs (the classic
/// unsaturated representation: products of two 51+epsilon-bit limbs fit in
/// __int128 accumulators with room for the 19-fold reduction terms).
///
/// Not constant-time: this library signs simulation traffic, not secrets.
struct Fe {
  std::array<std::uint64_t, 5> v{};

  static Fe zero() { return {}; }
  static Fe one() {
    Fe r;
    r.v[0] = 1;
    return r;
  }
  static Fe from_u64(std::uint64_t x);

  /// Load 32 little-endian bytes; the top bit (bit 255) is ignored, per the
  /// RFC 8032 encoding of field elements.
  static Fe from_bytes(codec::ByteView bytes32);

  /// Store as 32 little-endian bytes, fully reduced mod p.
  std::array<std::uint8_t, 32> to_bytes() const;

  bool is_zero() const;
  /// Parity of the fully-reduced value (used as the x sign bit).
  bool is_negative() const;

  friend Fe operator+(const Fe& a, const Fe& b);
  friend Fe operator-(const Fe& a, const Fe& b);
  friend Fe operator*(const Fe& a, const Fe& b);
  Fe square() const;
  Fe negate() const;

  /// a^(p-2): multiplicative inverse (0 maps to 0).
  Fe invert() const;

  /// Raise to the exponent given as 32 little-endian bytes.
  Fe pow(const std::array<std::uint8_t, 32>& exp_le) const;

  bool equals(const Fe& o) const;
};

/// Curve constants, derived (not hardcoded) at first use:
///   d       = -121665/121666 mod p
///   sqrt(-1)= 2^((p-1)/4) mod p
namespace fe_const {
const Fe& d();        ///< Edwards d
const Fe& d2();       ///< 2d
const Fe& sqrt_m1();  ///< sqrt(-1)
}  // namespace fe_const

/// Square root of (u/v) per RFC 8032 decompression: returns false when u/v is
/// not a quadratic residue. On success x satisfies v*x^2 == u.
bool fe_sqrt_ratio(const Fe& u, const Fe& v, Fe& x);

}  // namespace setchain::crypto
