#pragma once

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "codec/bytes.hpp"

namespace setchain::crypto {

/// Ed25519 (RFC 8032) built on the from-scratch SHA-512 / curve25519 code in
/// this module. The paper signs epoch-proofs and hash-batches with ed25519;
/// wire sizes (32-byte keys, 64-byte signatures) therefore match exactly.
///
/// Validated against the RFC 8032 test vectors in tests/crypto.
struct Ed25519 {
  static constexpr std::size_t kSeedSize = 32;
  static constexpr std::size_t kPublicKeySize = 32;
  static constexpr std::size_t kSignatureSize = 64;

  using Seed = std::array<std::uint8_t, kSeedSize>;
  using PublicKey = std::array<std::uint8_t, kPublicKeySize>;
  using Signature = std::array<std::uint8_t, kSignatureSize>;

  /// Derive the public key for a 32-byte seed (RFC 8032 "secret key").
  static PublicKey public_key(const Seed& seed);

  static Signature sign(const Seed& seed, const PublicKey& pub, codec::ByteView message);

  /// Cofactorless verification: S*B == R + k*A with canonical-S check.
  static bool verify(const PublicKey& pub, codec::ByteView message, const Signature& sig);

  /// One signature of a batch. The referenced key/signature/message bytes
  /// must stay alive for the duration of the verify_batch call.
  struct BatchEntry {
    const PublicKey* pub = nullptr;
    codec::ByteView message;
    const Signature* sig = nullptr;
  };

  struct BatchResult {
    bool all_valid = false;
    std::vector<bool> valid;  ///< per entry, same order as the input span
  };

  /// Batch verification via a random linear combination: checks
  ///   (sum z_i*S_i)*B == sum z_i*R_i + sum z_i*k_i*A_i
  /// with ONE interleaved multi-scalar multiplication, amortizing the
  /// doubling chain across the whole batch. The per-entry randomizers z_i
  /// are derived deterministically from a SHA-512 transcript of all
  /// (R, S, A, message) tuples — the full signatures, so no part of the
  /// batch can be chosen after the randomizers; no wall-clock randomness,
  /// so replays of the same batch are bit-identical. When the combined check fails the batch
  /// is bisected (each half re-checked with fresh transcript randomizers)
  /// down to per-signature scalar verification, so the result identifies
  /// exactly which signatures are bad and agrees entry-by-entry with
  /// `verify`.
  static BatchResult verify_batch(std::span<const BatchEntry> entries);

  /// verify_batch fanned out over the process thread pool: the batch is cut
  /// into `shards` contiguous sub-batches, each verified independently (own
  /// transcript, own MSM, own bisection), and the per-entry verdicts merged
  /// back in order. Verdicts are EXACTLY those of verify() per entry —
  /// sharding changes the combination grouping, never the outcome — so any
  /// shard count (including 1, which is plain verify_batch) agrees with any
  /// other. verify_batch itself delegates here with a machine-derived shard
  /// count, so callers normally never pick one; the explicit overload exists
  /// for tests and tuning.
  static BatchResult verify_batch_sharded(std::span<const BatchEntry> entries,
                                          std::size_t shards);
};

}  // namespace setchain::crypto
