#pragma once

#include <array>
#include <optional>

#include "codec/bytes.hpp"

namespace setchain::crypto {

/// Ed25519 (RFC 8032) built on the from-scratch SHA-512 / curve25519 code in
/// this module. The paper signs epoch-proofs and hash-batches with ed25519;
/// wire sizes (32-byte keys, 64-byte signatures) therefore match exactly.
///
/// Validated against the RFC 8032 test vectors in tests/crypto.
struct Ed25519 {
  static constexpr std::size_t kSeedSize = 32;
  static constexpr std::size_t kPublicKeySize = 32;
  static constexpr std::size_t kSignatureSize = 64;

  using Seed = std::array<std::uint8_t, kSeedSize>;
  using PublicKey = std::array<std::uint8_t, kPublicKeySize>;
  using Signature = std::array<std::uint8_t, kSignatureSize>;

  /// Derive the public key for a 32-byte seed (RFC 8032 "secret key").
  static PublicKey public_key(const Seed& seed);

  static Signature sign(const Seed& seed, const PublicKey& pub, codec::ByteView message);

  /// Cofactorless verification: S*B == R + k*A with canonical-S check.
  static bool verify(const PublicKey& pub, codec::ByteView message, const Signature& sig);
};

}  // namespace setchain::crypto
