#pragma once

#include <optional>
#include <span>

#include "crypto/bigint.hpp"
#include "crypto/fe25519.hpp"

namespace setchain::crypto {

struct GeScalarPoint;

/// Point on edwards25519 in extended homogeneous coordinates
/// (X : Y : Z : T) with x = X/Z, y = Y/Z, x*y = T/Z.
struct Ge {
  Fe X, Y, Z, T;

  static Ge identity();
  /// The standard base point B (y = 4/5, x even), derived at first use.
  static const Ge& base();

  Ge add(const Ge& o) const;
  Ge dbl() const;
  Ge negate() const;

  bool is_identity() const;

  /// Scalar multiplication, plain double-and-add over 256 bits.
  Ge scalar_mul(const U256& k) const;

  /// Scalar multiplication via signed width-5 windowed NAF. Variable time
  /// (this library signs simulation traffic, not secrets); ~40% of the
  /// point operations of plain double-and-add.
  Ge scalar_mul_vartime(const U256& k) const;

  /// k*B through the precomputed width-8 odd-multiples table of the base
  /// point: the fast path for signing and the fixed-base half of verify.
  static Ge base_scalar_mul(const U256& k);

  using ScalarPoint = GeScalarPoint;

  /// Straus/interleaved multi-scalar multiplication:
  ///   base_scalar*B + sum_i terms[i].scalar * terms[i].point
  /// One shared doubling chain for all terms (the doublings amortize across
  /// the whole sum, which is what makes batch signature verification pay
  /// off). Variable time.
  static Ge multi_scalar_mul(const U256& base_scalar,
                             std::span<const GeScalarPoint> terms);

  /// Compressed 32-byte encoding: y with the sign of x in the top bit.
  std::array<std::uint8_t, 32> compress() const;

  /// Decompress; rejects non-curve points and the x==0/sign==1 encoding.
  static std::optional<Ge> decompress(codec::ByteView bytes32);
};

/// One term of a multi-scalar multiplication (see Ge::multi_scalar_mul).
struct GeScalarPoint {
  U256 scalar;
  Ge point;
};

}  // namespace setchain::crypto
