#pragma once

#include <optional>

#include "crypto/bigint.hpp"
#include "crypto/fe25519.hpp"

namespace setchain::crypto {

/// Point on edwards25519 in extended homogeneous coordinates
/// (X : Y : Z : T) with x = X/Z, y = Y/Z, x*y = T/Z.
struct Ge {
  Fe X, Y, Z, T;

  static Ge identity();
  /// The standard base point B (y = 4/5, x even), derived at first use.
  static const Ge& base();

  Ge add(const Ge& o) const;
  Ge dbl() const;
  Ge negate() const;

  /// Scalar multiplication, plain double-and-add over 256 bits.
  Ge scalar_mul(const U256& k) const;

  /// Compressed 32-byte encoding: y with the sign of x in the top bit.
  std::array<std::uint8_t, 32> compress() const;

  /// Decompress; rejects non-curve points and the x==0/sign==1 encoding.
  static std::optional<Ge> decompress(codec::ByteView bytes32);
};

}  // namespace setchain::crypto
