#pragma once

#include <array>
#include <cstdint>

#include "codec/bytes.hpp"

namespace setchain::crypto {

/// Fixed-width little-endian multiprecision unsigned integer (W 64-bit
/// words). Used for Ed25519 scalar arithmetic mod the group order L; speed is
/// not critical there (a handful of operations per signature), so clarity and
/// obvious correctness win over limb tricks.
template <std::size_t W>
struct BigUInt {
  std::array<std::uint64_t, W> w{};

  static BigUInt zero() { return {}; }

  static BigUInt from_u64(std::uint64_t v) {
    BigUInt r;
    r.w[0] = v;
    return r;
  }

  /// Little-endian byte import (up to 8*W bytes).
  static BigUInt from_bytes_le(codec::ByteView bytes) {
    BigUInt r;
    for (std::size_t i = 0; i < bytes.size() && i < 8 * W; ++i) {
      r.w[i / 8] |= static_cast<std::uint64_t>(bytes[i]) << (8 * (i % 8));
    }
    return r;
  }

  /// Little-endian byte export (N bytes; high bytes beyond N must be zero
  /// for a faithful roundtrip but are silently truncated here).
  template <std::size_t N>
  std::array<std::uint8_t, N> to_bytes_le() const {
    std::array<std::uint8_t, N> out{};
    for (std::size_t i = 0; i < N && i < 8 * W; ++i) {
      out[i] = static_cast<std::uint8_t>(w[i / 8] >> (8 * (i % 8)));
    }
    return out;
  }

  bool is_zero() const {
    for (auto x : w)
      if (x != 0) return false;
    return true;
  }

  int compare(const BigUInt& o) const {
    for (std::size_t i = W; i-- > 0;) {
      if (w[i] != o.w[i]) return w[i] < o.w[i] ? -1 : 1;
    }
    return 0;
  }
  bool operator<(const BigUInt& o) const { return compare(o) < 0; }
  bool operator>=(const BigUInt& o) const { return compare(o) >= 0; }
  bool operator==(const BigUInt& o) const { return compare(o) == 0; }

  /// Index of highest set bit + 1 (0 for zero).
  std::size_t bit_length() const {
    for (std::size_t i = W; i-- > 0;) {
      if (w[i] != 0) {
        return 64 * i + (64 - static_cast<std::size_t>(__builtin_clzll(w[i])));
      }
    }
    return 0;
  }

  bool bit(std::size_t i) const {
    if (i >= 64 * W) return false;
    return (w[i / 64] >> (i % 64)) & 1;
  }

  /// r = this + o (mod 2^(64W)); returns the carry out.
  std::uint64_t add_in_place(const BigUInt& o) {
    unsigned __int128 carry = 0;
    for (std::size_t i = 0; i < W; ++i) {
      carry += static_cast<unsigned __int128>(w[i]) + o.w[i];
      w[i] = static_cast<std::uint64_t>(carry);
      carry >>= 64;
    }
    return static_cast<std::uint64_t>(carry);
  }

  /// r = this - o (mod 2^(64W)); returns the borrow out (1 if o > this).
  std::uint64_t sub_in_place(const BigUInt& o) {
    unsigned __int128 borrow = 0;
    for (std::size_t i = 0; i < W; ++i) {
      const unsigned __int128 lhs = w[i];
      const unsigned __int128 rhs = static_cast<unsigned __int128>(o.w[i]) + borrow;
      if (lhs >= rhs) {
        w[i] = static_cast<std::uint64_t>(lhs - rhs);
        borrow = 0;
      } else {
        w[i] = static_cast<std::uint64_t>((static_cast<unsigned __int128>(1) << 64) + lhs - rhs);
        borrow = 1;
      }
    }
    return static_cast<std::uint64_t>(borrow);
  }

  /// Left shift by k bits (drops overflow).
  BigUInt shl(std::size_t k) const {
    BigUInt r;
    const std::size_t word_shift = k / 64;
    const std::size_t bit_shift = k % 64;
    for (std::size_t i = W; i-- > 0;) {
      std::uint64_t v = 0;
      if (i >= word_shift) {
        v = w[i - word_shift] << bit_shift;
        if (bit_shift > 0 && i > word_shift) {
          v |= w[i - word_shift - 1] >> (64 - bit_shift);
        }
      }
      r.w[i] = v;
    }
    return r;
  }
};

using U256 = BigUInt<4>;
using U512 = BigUInt<8>;

/// Widening product of two 256-bit values.
U512 mul_256(const U256& a, const U256& b);

/// Reduce a 512-bit value modulo a <=256-bit modulus via binary long
/// division. O(512) word ops; plenty fast for signing workloads.
U256 mod_512(const U512& x, const U256& m);

/// (a * b + c) mod m, all 256-bit.
U256 muladd_mod(const U256& a, const U256& b, const U256& c, const U256& m);

}  // namespace setchain::crypto
