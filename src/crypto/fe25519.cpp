#include "crypto/fe25519.hpp"

#include <cstring>

namespace setchain::crypto {

namespace {

constexpr std::uint64_t kMask = (std::uint64_t{1} << 51) - 1;

inline std::uint64_t load64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // little-endian host assumed (x86/ARM); asserted in tests
}

/// Weak carry propagation: brings limbs below 2^52 (enough headroom for the
/// next multiplication).
inline void carry_weak(std::array<std::uint64_t, 5>& v) {
  std::uint64_t c;
  c = v[0] >> 51; v[0] &= kMask; v[1] += c;
  c = v[1] >> 51; v[1] &= kMask; v[2] += c;
  c = v[2] >> 51; v[2] &= kMask; v[3] += c;
  c = v[3] >> 51; v[3] &= kMask; v[4] += c;
  c = v[4] >> 51; v[4] &= kMask; v[0] += c * 19;
  c = v[0] >> 51; v[0] &= kMask; v[1] += c;
}

}  // namespace

Fe Fe::from_u64(std::uint64_t x) {
  Fe r;
  r.v[0] = x & kMask;
  r.v[1] = x >> 51;
  return r;
}

Fe Fe::from_bytes(codec::ByteView b) {
  Fe r;
  r.v[0] = load64(b.data()) & kMask;
  r.v[1] = (load64(b.data() + 6) >> 3) & kMask;
  r.v[2] = (load64(b.data() + 12) >> 6) & kMask;
  r.v[3] = (load64(b.data() + 19) >> 1) & kMask;
  r.v[4] = (load64(b.data() + 24) >> 12) & kMask;
  return r;
}

std::array<std::uint8_t, 32> Fe::to_bytes() const {
  std::array<std::uint64_t, 5> t = v;
  carry_weak(t);
  carry_weak(t);

  // Freeze: add 19 and check whether the sum overflows 2^255; if so the
  // value was >= p and we subtract p (i.e. keep the +19 and drop bit 255).
  std::uint64_t q = (t[0] + 19) >> 51;
  q = (t[1] + q) >> 51;
  q = (t[2] + q) >> 51;
  q = (t[3] + q) >> 51;
  q = (t[4] + q) >> 51;

  t[0] += 19 * q;
  std::uint64_t c;
  c = t[0] >> 51; t[0] &= kMask; t[1] += c;
  c = t[1] >> 51; t[1] &= kMask; t[2] += c;
  c = t[2] >> 51; t[2] &= kMask; t[3] += c;
  c = t[3] >> 51; t[3] &= kMask; t[4] += c;
  t[4] &= kMask;  // drop bit 255 (that subtracts 2^255, completing -p)

  std::array<std::uint8_t, 32> out{};
  const std::uint64_t w0 = t[0] | (t[1] << 51);
  const std::uint64_t w1 = (t[1] >> 13) | (t[2] << 38);
  const std::uint64_t w2 = (t[2] >> 26) | (t[3] << 25);
  const std::uint64_t w3 = (t[3] >> 39) | (t[4] << 12);
  std::memcpy(out.data() + 0, &w0, 8);
  std::memcpy(out.data() + 8, &w1, 8);
  std::memcpy(out.data() + 16, &w2, 8);
  std::memcpy(out.data() + 24, &w3, 8);
  return out;
}

bool Fe::is_zero() const {
  const auto b = to_bytes();
  for (auto x : b)
    if (x != 0) return false;
  return true;
}

bool Fe::is_negative() const { return to_bytes()[0] & 1; }

Fe operator+(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  carry_weak(r.v);
  return r;
}

Fe operator-(const Fe& a, const Fe& b) {
  // a + 2p - b, limbwise, keeps everything nonnegative.
  Fe r;
  r.v[0] = a.v[0] + 0xFFFFFFFFFFFDAULL - b.v[0];
  r.v[1] = a.v[1] + 0xFFFFFFFFFFFFEULL - b.v[1];
  r.v[2] = a.v[2] + 0xFFFFFFFFFFFFEULL - b.v[2];
  r.v[3] = a.v[3] + 0xFFFFFFFFFFFFEULL - b.v[3];
  r.v[4] = a.v[4] + 0xFFFFFFFFFFFFEULL - b.v[4];
  carry_weak(r.v);
  return r;
}

Fe operator*(const Fe& a, const Fe& b) {
  using u128 = unsigned __int128;
  const std::uint64_t f0 = a.v[0], f1 = a.v[1], f2 = a.v[2], f3 = a.v[3], f4 = a.v[4];
  const std::uint64_t g0 = b.v[0], g1 = b.v[1], g2 = b.v[2], g3 = b.v[3], g4 = b.v[4];

  const u128 r0 = (u128)f0 * g0 +
                  (u128)19 * ((u128)f1 * g4 + (u128)f2 * g3 + (u128)f3 * g2 + (u128)f4 * g1);
  const u128 r1 = (u128)f0 * g1 + (u128)f1 * g0 +
                  (u128)19 * ((u128)f2 * g4 + (u128)f3 * g3 + (u128)f4 * g2);
  const u128 r2 = (u128)f0 * g2 + (u128)f1 * g1 + (u128)f2 * g0 +
                  (u128)19 * ((u128)f3 * g4 + (u128)f4 * g3);
  const u128 r3 = (u128)f0 * g3 + (u128)f1 * g2 + (u128)f2 * g1 + (u128)f3 * g0 +
                  (u128)19 * ((u128)f4 * g4);
  const u128 r4 = (u128)f0 * g4 + (u128)f1 * g3 + (u128)f2 * g2 + (u128)f3 * g1 +
                  (u128)f4 * g0;

  Fe out;
  u128 c;
  u128 t0 = r0, t1 = r1, t2 = r2, t3 = r3, t4 = r4;
  c = t0 >> 51; t0 &= kMask; t1 += c;
  c = t1 >> 51; t1 &= kMask; t2 += c;
  c = t2 >> 51; t2 &= kMask; t3 += c;
  c = t3 >> 51; t3 &= kMask; t4 += c;
  c = t4 >> 51; t4 &= kMask; t0 += c * 19;
  c = t0 >> 51; t0 &= kMask; t1 += c;

  out.v[0] = static_cast<std::uint64_t>(t0);
  out.v[1] = static_cast<std::uint64_t>(t1);
  out.v[2] = static_cast<std::uint64_t>(t2);
  out.v[3] = static_cast<std::uint64_t>(t3);
  out.v[4] = static_cast<std::uint64_t>(t4);
  return out;
}

Fe Fe::square() const { return *this * *this; }

Fe Fe::negate() const { return Fe::zero() - *this; }

Fe Fe::pow(const std::array<std::uint8_t, 32>& exp_le) const {
  Fe result = Fe::one();
  bool started = false;
  for (int bit = 255; bit >= 0; --bit) {
    if (started) result = result.square();
    const bool set = (exp_le[static_cast<std::size_t>(bit / 8)] >> (bit % 8)) & 1;
    if (set) {
      if (started) {
        result = result * *this;
      } else {
        result = *this;
        started = true;
      }
    }
  }
  return started ? result : Fe::one();
}

namespace {
std::array<std::uint8_t, 32> exp_bytes(std::uint8_t lowest, std::uint8_t highest) {
  std::array<std::uint8_t, 32> e;
  e.fill(0xFF);
  e[0] = lowest;
  e[31] = highest;
  return e;
}
}  // namespace

Fe Fe::invert() const {
  // p - 2 = 2^255 - 21
  return pow(exp_bytes(0xEB, 0x7F));
}

bool Fe::equals(const Fe& o) const { return to_bytes() == o.to_bytes(); }

namespace fe_const {

const Fe& d() {
  static const Fe kD = [] {
    const Fe num = Fe::from_u64(121665).negate();
    const Fe den = Fe::from_u64(121666).invert();
    return num * den;
  }();
  return kD;
}

const Fe& d2() {
  static const Fe kD2 = d() + d();
  return kD2;
}

const Fe& sqrt_m1() {
  // 2^((p-1)/4), (p-1)/4 = 2^253 - 5
  static const Fe kSqrtM1 = Fe::from_u64(2).pow(exp_bytes(0xFB, 0x1F));
  return kSqrtM1;
}

}  // namespace fe_const

bool fe_sqrt_ratio(const Fe& u, const Fe& v, Fe& x) {
  // RFC 8032 section 5.1.3: candidate root of u/v.
  const Fe v3 = v.square() * v;
  const Fe v7 = v3.square() * v;
  // (p-5)/8 = 2^252 - 3
  std::array<std::uint8_t, 32> e;
  e.fill(0xFF);
  e[0] = 0xFD;
  e[31] = 0x0F;
  Fe cand = u * v3 * (u * v7).pow(e);

  const Fe check = v * cand.square();
  if (check.equals(u)) {
    x = cand;
    return true;
  }
  if (check.equals(u.negate())) {
    x = cand * fe_const::sqrt_m1();
    return true;
  }
  return false;
}

}  // namespace setchain::crypto
