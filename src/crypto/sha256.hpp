#pragma once

#include <array>
#include <cstdint>

#include "codec/bytes.hpp"

namespace setchain::crypto {

/// SHA-256 (FIPS 180-4), implemented from scratch and validated against the
/// NIST test vectors in tests/crypto/sha_test.cpp.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();
  void update(codec::ByteView data);
  Digest finalize();

  /// One-shot convenience.
  static Digest hash(codec::ByteView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace setchain::crypto
