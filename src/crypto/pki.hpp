#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "crypto/ed25519.hpp"

namespace setchain::crypto {

/// Process identifier in the Setchain system model: servers and clients are
/// both "processes" with keys in the PKI.
using ProcessId = std::uint32_t;

/// Public-key infrastructure from the paper's system model: every process
/// has a keypair and knows everyone's public key. Keys are derived
/// deterministically from a master seed so simulation runs are reproducible.
class Pki {
 public:
  explicit Pki(std::uint64_t master_seed);

  /// Create (or return the existing) keypair for a process.
  const Ed25519::PublicKey& register_process(ProcessId id);

  bool knows(ProcessId id) const { return keys_.contains(id); }
  const Ed25519::PublicKey& public_key(ProcessId id) const;

  /// Sign on behalf of a registered process (the simulation holds all seeds;
  /// a real deployment would keep them per-host).
  Ed25519::Signature sign(ProcessId id, codec::ByteView message) const;

  /// Verify a signature allegedly from `id`. Unknown processes fail.
  bool verify(ProcessId id, codec::ByteView message, const Ed25519::Signature& sig) const;

  /// One (signer, message, signature) triple of a batch. The referenced
  /// message/signature bytes must outlive the verify_batch call.
  struct SignedMessage {
    ProcessId signer = 0;
    codec::ByteView message;
    const Ed25519::Signature* sig = nullptr;
  };

  /// Batch-verify a block's worth of signatures with one Ed25519 batch
  /// check (see Ed25519::verify_batch). Entries from unknown processes are
  /// reported invalid without entering the batch. The per-item verdicts
  /// agree with scalar `verify` entry by entry.
  Ed25519::BatchResult verify_batch(std::span<const SignedMessage> items) const;

  std::vector<ProcessId> processes() const;

 private:
  struct Entry {
    Ed25519::Seed seed;
    Ed25519::PublicKey pub;
  };
  std::uint64_t master_seed_;
  std::unordered_map<ProcessId, Entry> keys_;
};

}  // namespace setchain::crypto
