#pragma once

#include <array>

#include "codec/bytes.hpp"

namespace setchain::crypto {

/// HMAC (RFC 2104) over any hash with the Sha256/Sha512-style interface
/// (kDigestSize, update, finalize, block size deduced from the context
/// buffer). Validated against RFC 4231 vectors.
template <typename Hash, std::size_t BlockSize>
std::array<std::uint8_t, Hash::kDigestSize> hmac(codec::ByteView key,
                                                 codec::ByteView message) {
  std::array<std::uint8_t, BlockSize> k_block{};
  if (key.size() > BlockSize) {
    const auto digest = Hash::hash(key);
    std::copy(digest.begin(), digest.end(), k_block.begin());
  } else {
    std::copy(key.begin(), key.end(), k_block.begin());
  }

  std::array<std::uint8_t, BlockSize> ipad{};
  std::array<std::uint8_t, BlockSize> opad{};
  for (std::size_t i = 0; i < BlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x5c);
  }

  Hash inner;
  inner.update(codec::ByteView(ipad.data(), ipad.size()));
  inner.update(message);
  const auto inner_digest = inner.finalize();

  Hash outer;
  outer.update(codec::ByteView(opad.data(), opad.size()));
  outer.update(codec::ByteView(inner_digest.data(), inner_digest.size()));
  return outer.finalize();
}

}  // namespace setchain::crypto
