#include "crypto/pki.hpp"

#include <stdexcept>

#include "crypto/sha512.hpp"

namespace setchain::crypto {

Pki::Pki(std::uint64_t master_seed) : master_seed_(master_seed) {}

const Ed25519::PublicKey& Pki::register_process(ProcessId id) {
  auto it = keys_.find(id);
  if (it != keys_.end()) return it->second.pub;

  // seed = SHA-512(master_seed || id)[0..32): deterministic, collision-free
  // per process.
  codec::Bytes material;
  codec::append_u64le(material, master_seed_);
  codec::append_u32le(material, id);
  const auto digest = Sha512::hash(material);

  Entry e;
  std::copy(digest.begin(), digest.begin() + 32, e.seed.begin());
  e.pub = Ed25519::public_key(e.seed);
  auto [pos, _] = keys_.emplace(id, e);
  return pos->second.pub;
}

const Ed25519::PublicKey& Pki::public_key(ProcessId id) const {
  auto it = keys_.find(id);
  if (it == keys_.end()) throw std::out_of_range("Pki: unknown process");
  return it->second.pub;
}

Ed25519::Signature Pki::sign(ProcessId id, codec::ByteView message) const {
  auto it = keys_.find(id);
  if (it == keys_.end()) throw std::out_of_range("Pki: unknown process");
  return Ed25519::sign(it->second.seed, it->second.pub, message);
}

bool Pki::verify(ProcessId id, codec::ByteView message,
                 const Ed25519::Signature& sig) const {
  auto it = keys_.find(id);
  if (it == keys_.end()) return false;
  return Ed25519::verify(it->second.pub, message, sig);
}

std::vector<ProcessId> Pki::processes() const {
  std::vector<ProcessId> out;
  out.reserve(keys_.size());
  for (const auto& [id, _] : keys_) out.push_back(id);
  return out;
}

}  // namespace setchain::crypto
