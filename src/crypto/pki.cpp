#include "crypto/pki.hpp"

#include <stdexcept>

#include "crypto/sha512.hpp"

namespace setchain::crypto {

Pki::Pki(std::uint64_t master_seed) : master_seed_(master_seed) {}

const Ed25519::PublicKey& Pki::register_process(ProcessId id) {
  auto it = keys_.find(id);
  if (it != keys_.end()) return it->second.pub;

  // seed = SHA-512(master_seed || id)[0..32): deterministic, collision-free
  // per process.
  codec::Bytes material;
  codec::append_u64le(material, master_seed_);
  codec::append_u32le(material, id);
  const auto digest = Sha512::hash(material);

  Entry e;
  std::copy(digest.begin(), digest.begin() + 32, e.seed.begin());
  e.pub = Ed25519::public_key(e.seed);
  auto [pos, _] = keys_.emplace(id, e);
  return pos->second.pub;
}

const Ed25519::PublicKey& Pki::public_key(ProcessId id) const {
  auto it = keys_.find(id);
  if (it == keys_.end()) throw std::out_of_range("Pki: unknown process");
  return it->second.pub;
}

Ed25519::Signature Pki::sign(ProcessId id, codec::ByteView message) const {
  auto it = keys_.find(id);
  if (it == keys_.end()) throw std::out_of_range("Pki: unknown process");
  return Ed25519::sign(it->second.seed, it->second.pub, message);
}

bool Pki::verify(ProcessId id, codec::ByteView message,
                 const Ed25519::Signature& sig) const {
  auto it = keys_.find(id);
  if (it == keys_.end()) return false;
  return Ed25519::verify(it->second.pub, message, sig);
}

Ed25519::BatchResult Pki::verify_batch(std::span<const SignedMessage> items) const {
  std::vector<Ed25519::BatchEntry> entries;
  std::vector<std::size_t> positions;  ///< items index of each batch entry
  entries.reserve(items.size());
  positions.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto it = keys_.find(items[i].signer);
    if (it == keys_.end()) continue;  // unknown process: invalid, not batched
    entries.push_back(Ed25519::BatchEntry{&it->second.pub, items[i].message, items[i].sig});
    positions.push_back(i);
  }

  const Ed25519::BatchResult inner = Ed25519::verify_batch(entries);
  Ed25519::BatchResult out;
  out.valid.assign(items.size(), false);
  for (std::size_t j = 0; j < positions.size(); ++j) out.valid[positions[j]] = inner.valid[j];
  out.all_valid = inner.all_valid && positions.size() == items.size();
  return out;
}

std::vector<ProcessId> Pki::processes() const {
  std::vector<ProcessId> out;
  out.reserve(keys_.size());
  for (const auto& [id, _] : keys_) out.push_back(id);
  return out;
}

}  // namespace setchain::crypto
