#include "crypto/ge25519.hpp"

#include <algorithm>
#include <vector>

namespace setchain::crypto {

namespace {

/// Width-w NAF: k = sum d[i]*2^i with every nonzero digit odd and
/// |d[i]| <= 2^(w-1) - 1, so consecutive nonzero digits are at least w
/// apart. 257 digits suffice for any 256-bit k (the centered-digit carry can
/// push one bit past the top). Variable time.
struct Naf {
  std::array<std::int8_t, 257> d{};
  int len = 0;  ///< highest nonzero index + 1
};

Naf wnaf(const U256& k, int w) {
  Naf out;
  // One spare word: subtracting a negative digit adds up to 2^(w-1).
  std::array<std::uint64_t, 5> v{};
  for (int i = 0; i < 4; ++i) v[i] = k.w[i];

  const std::uint64_t mask = (std::uint64_t{1} << w) - 1;
  const std::int64_t half = std::int64_t{1} << (w - 1);
  const auto nonzero = [&v] {
    for (const auto x : v)
      if (x != 0) return true;
    return false;
  };

  int i = 0;
  while (nonzero()) {
    if (v[0] & 1) {
      std::int64_t d = static_cast<std::int64_t>(v[0] & mask);
      if (d >= half) d -= static_cast<std::int64_t>(mask) + 1;
      out.d[i] = static_cast<std::int8_t>(d);
      if (d > 0) {  // v -= d
        std::uint64_t borrow = static_cast<std::uint64_t>(d);
        for (std::size_t j = 0; j < v.size() && borrow; ++j) {
          const std::uint64_t before = v[j];
          v[j] = before - borrow;
          borrow = before < borrow ? 1 : 0;
        }
      } else {  // v += -d
        std::uint64_t carry = static_cast<std::uint64_t>(-d);
        for (std::size_t j = 0; j < v.size() && carry; ++j) {
          const std::uint64_t before = v[j];
          v[j] = before + carry;
          carry = v[j] < before ? 1 : 0;
        }
      }
    }
    for (std::size_t j = 0; j + 1 < v.size(); ++j) {
      v[j] = (v[j] >> 1) | (v[j + 1] << 63);
    }
    v.back() >>= 1;
    ++i;
  }
  out.len = i;
  return out;
}

/// Odd multiples 1P, 3P, ..., 15P for width-5 NAF digits.
struct OddTable {
  std::array<Ge, 8> pts;
};

OddTable make_odd_table(const Ge& p) {
  OddTable t;
  t.pts[0] = p;
  const Ge p2 = p.dbl();
  for (std::size_t i = 1; i < t.pts.size(); ++i) t.pts[i] = t.pts[i - 1].add(p2);
  return t;
}

constexpr int kBaseWindow = 8;  ///< width-8 NAF for the fixed base point

/// 1B, 3B, ..., 127B, built once.
const std::array<Ge, 64>& base_odd_table() {
  static const std::array<Ge, 64> kTable = [] {
    std::array<Ge, 64> out;
    out[0] = Ge::base();
    const Ge b2 = Ge::base().dbl();
    for (std::size_t i = 1; i < out.size(); ++i) out[i] = out[i - 1].add(b2);
    return out;
  }();
  return kTable;
}

template <std::size_t N>
Ge add_digit(const Ge& acc, const std::array<Ge, N>& odd, int d) {
  return d > 0 ? acc.add(odd[static_cast<std::size_t>(d) >> 1])
               : acc.add(odd[static_cast<std::size_t>(-d) >> 1].negate());
}

}  // namespace

Ge Ge::identity() {
  return Ge{Fe::zero(), Fe::one(), Fe::one(), Fe::zero()};
}

const Ge& Ge::base() {
  static const Ge kBase = [] {
    // y = 4/5 mod p; x recovered with even parity (the standard B).
    const Fe y = Fe::from_u64(4) * Fe::from_u64(5).invert();
    auto enc = y.to_bytes();  // sign bit 0 -> even x
    const auto p = Ge::decompress(codec::ByteView(enc.data(), enc.size()));
    return *p;  // must exist; validated by RFC 8032 vectors in tests
  }();
  return kBase;
}

Ge Ge::add(const Ge& o) const {
  // add-2008-hwcd-3 for a = -1 twisted Edwards (unified, complete).
  const Fe A = (Y - X) * (o.Y - o.X);
  const Fe B = (Y + X) * (o.Y + o.X);
  const Fe C = T * fe_const::d2() * o.T;
  const Fe D = (Z + Z) * o.Z;
  const Fe E = B - A;
  const Fe F = D - C;
  const Fe G = D + C;
  const Fe H = B + A;
  return Ge{E * F, G * H, F * G, E * H};
}

Ge Ge::dbl() const {
  // dbl-2008-hwcd for a = -1.
  const Fe A = X.square();
  const Fe B = Y.square();
  const Fe C = Z.square() + Z.square();
  const Fe D = A.negate();
  const Fe E = (X + Y).square() - A - B;
  const Fe G = D + B;
  const Fe F = G - C;
  const Fe H = D - B;
  return Ge{E * F, G * H, F * G, E * H};
}

Ge Ge::negate() const { return Ge{X.negate(), Y, Z, T.negate()}; }

bool Ge::is_identity() const {
  // Projectively (0 : Z : Z : 0); the X check excludes the 2-torsion point
  // (0, -1), which also has X == 0 but Y == -Z.
  return X.is_zero() && (Y - Z).is_zero();
}

Ge Ge::scalar_mul(const U256& k) const {
  Ge acc = Ge::identity();
  const std::size_t bits = k.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    acc = acc.dbl();
    if (k.bit(i)) acc = acc.add(*this);
  }
  return acc;
}

Ge Ge::scalar_mul_vartime(const U256& k) const {
  const Naf naf = wnaf(k, 5);
  if (naf.len == 0) return Ge::identity();
  const OddTable odd = make_odd_table(*this);
  Ge acc = Ge::identity();
  for (int i = naf.len; i-- > 0;) {
    acc = acc.dbl();
    if (naf.d[i] != 0) acc = add_digit(acc, odd.pts, naf.d[i]);
  }
  return acc;
}

Ge Ge::base_scalar_mul(const U256& k) {
  return multi_scalar_mul(k, std::span<const ScalarPoint>{});
}

Ge Ge::multi_scalar_mul(const U256& base_scalar, std::span<const ScalarPoint> terms) {
  const Naf base_naf = wnaf(base_scalar, kBaseWindow);
  std::vector<Naf> nafs;
  std::vector<OddTable> tables;
  nafs.reserve(terms.size());
  tables.reserve(terms.size());
  int top = base_naf.len;
  for (const auto& t : terms) {
    nafs.push_back(wnaf(t.scalar, 5));
    tables.push_back(make_odd_table(t.point));
    top = std::max(top, nafs.back().len);
  }

  Ge acc = Ge::identity();
  for (int i = top; i-- > 0;) {
    acc = acc.dbl();
    if (i < base_naf.len && base_naf.d[i] != 0) {
      acc = add_digit(acc, base_odd_table(), base_naf.d[i]);
    }
    for (std::size_t j = 0; j < nafs.size(); ++j) {
      if (i < nafs[j].len && nafs[j].d[i] != 0) {
        acc = add_digit(acc, tables[j].pts, nafs[j].d[i]);
      }
    }
  }
  return acc;
}

std::array<std::uint8_t, 32> Ge::compress() const {
  const Fe zinv = Z.invert();
  const Fe x = X * zinv;
  const Fe y = Y * zinv;
  auto out = y.to_bytes();
  if (x.is_negative()) out[31] |= 0x80;
  return out;
}

std::optional<Ge> Ge::decompress(codec::ByteView b) {
  if (b.size() != 32) return std::nullopt;
  const bool sign = (b[31] & 0x80) != 0;
  const Fe y = Fe::from_bytes(b);

  // x^2 = (y^2 - 1) / (d*y^2 + 1)
  const Fe y2 = y.square();
  const Fe u = y2 - Fe::one();
  const Fe v = fe_const::d() * y2 + Fe::one();
  Fe x;
  if (!fe_sqrt_ratio(u, v, x)) return std::nullopt;
  if (x.is_zero() && sign) return std::nullopt;  // -0 is not a valid encoding
  if (x.is_negative() != sign) x = x.negate();

  Ge p;
  p.X = x;
  p.Y = y;
  p.Z = Fe::one();
  p.T = x * y;
  return p;
}

}  // namespace setchain::crypto
