#include "crypto/ge25519.hpp"

namespace setchain::crypto {

Ge Ge::identity() {
  return Ge{Fe::zero(), Fe::one(), Fe::one(), Fe::zero()};
}

const Ge& Ge::base() {
  static const Ge kBase = [] {
    // y = 4/5 mod p; x recovered with even parity (the standard B).
    const Fe y = Fe::from_u64(4) * Fe::from_u64(5).invert();
    auto enc = y.to_bytes();  // sign bit 0 -> even x
    const auto p = Ge::decompress(codec::ByteView(enc.data(), enc.size()));
    return *p;  // must exist; validated by RFC 8032 vectors in tests
  }();
  return kBase;
}

Ge Ge::add(const Ge& o) const {
  // add-2008-hwcd-3 for a = -1 twisted Edwards (unified, complete).
  const Fe A = (Y - X) * (o.Y - o.X);
  const Fe B = (Y + X) * (o.Y + o.X);
  const Fe C = T * fe_const::d2() * o.T;
  const Fe D = (Z + Z) * o.Z;
  const Fe E = B - A;
  const Fe F = D - C;
  const Fe G = D + C;
  const Fe H = B + A;
  return Ge{E * F, G * H, F * G, E * H};
}

Ge Ge::dbl() const {
  // dbl-2008-hwcd for a = -1.
  const Fe A = X.square();
  const Fe B = Y.square();
  const Fe C = Z.square() + Z.square();
  const Fe D = A.negate();
  const Fe E = (X + Y).square() - A - B;
  const Fe G = D + B;
  const Fe F = G - C;
  const Fe H = D - B;
  return Ge{E * F, G * H, F * G, E * H};
}

Ge Ge::negate() const { return Ge{X.negate(), Y, Z, T.negate()}; }

Ge Ge::scalar_mul(const U256& k) const {
  Ge acc = Ge::identity();
  const std::size_t bits = k.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    acc = acc.dbl();
    if (k.bit(i)) acc = acc.add(*this);
  }
  return acc;
}

std::array<std::uint8_t, 32> Ge::compress() const {
  const Fe zinv = Z.invert();
  const Fe x = X * zinv;
  const Fe y = Y * zinv;
  auto out = y.to_bytes();
  if (x.is_negative()) out[31] |= 0x80;
  return out;
}

std::optional<Ge> Ge::decompress(codec::ByteView b) {
  if (b.size() != 32) return std::nullopt;
  const bool sign = (b[31] & 0x80) != 0;
  const Fe y = Fe::from_bytes(b);

  // x^2 = (y^2 - 1) / (d*y^2 + 1)
  const Fe y2 = y.square();
  const Fe u = y2 - Fe::one();
  const Fe v = fe_const::d() * y2 + Fe::one();
  Fe x;
  if (!fe_sqrt_ratio(u, v, x)) return std::nullopt;
  if (x.is_zero() && sign) return std::nullopt;  // -0 is not a valid encoding
  if (x.is_negative() != sign) x = x.negate();

  Ge p;
  p.X = x;
  p.Y = y;
  p.Z = Fe::one();
  p.T = x * y;
  return p;
}

}  // namespace setchain::crypto
