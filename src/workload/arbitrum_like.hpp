#pragma once

#include <cstdint>

#include "codec/bytes.hpp"
#include "sim/rng.hpp"

namespace setchain::workload {

/// Synthetic stand-in for the Arbitrum transaction trace the paper replays.
///
/// The paper uses the trace for two statistics only: element size
/// (mean 438 B, stddev 753.5 B — heavy tailed) and batch compressibility
/// (Brotli ratio 2.5-3.5 at collector sizes 100-500). We match both:
/// sizes follow a clipped lognormal fitted to that mean/stddev, and payloads
/// are structured pseudo-transactions (pooled addresses, method selectors,
/// zero-padded calldata words) whose batches land in the same ratio band
/// under the szx LZ77 codec (verified in tests/workload).
struct ArbitrumLikeConfig {
  double mean_size = 438.0;
  double stddev_size = 753.5;
  std::uint32_t min_size = 96;
  std::uint32_t max_size = 8192;
  std::uint32_t address_pool = 512;   ///< hot-account locality
  std::uint32_t selector_pool = 64;   ///< popular contract methods
};

class ArbitrumLikeGenerator {
 public:
  explicit ArbitrumLikeGenerator(std::uint64_t seed, ArbitrumLikeConfig cfg = {});

  /// Sample a transaction wire size (bytes).
  std::uint32_t sample_size();

  /// Deterministic payload of exactly `size` bytes for a given element id.
  /// Pure in (seed, element_id, size): elements can be re-materialized
  /// lazily without storing their bytes.
  codec::Bytes make_payload(std::uint64_t element_id, std::uint32_t size) const;

  const ArbitrumLikeConfig& config() const { return cfg_; }

  /// Lognormal parameters fitted to (mean, stddev); exposed for tests.
  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  ArbitrumLikeConfig cfg_;
  std::uint64_t seed_;
  sim::Rng size_rng_;
  double mu_;
  double sigma_;
};

}  // namespace setchain::workload
