#include "workload/rollup.hpp"

#include <algorithm>
#include <chrono>

#include "sim/rng.hpp"

namespace setchain::workload::rollup {

namespace {
constexpr std::size_t kRootSize =
    std::tuple_size<exec::LedgerState::StateRoot>::value;

void write_root(codec::Writer& w, const exec::LedgerState::StateRoot& root) {
  w.bytes(codec::ByteView(root.data(), root.size()));
}

bool read_root(codec::Reader& r, exec::LedgerState::StateRoot& out) {
  const auto v = r.bytes(kRootSize);
  if (!v) return false;
  std::copy(v->begin(), v->end(), out.begin());
  return true;
}
}  // namespace

codec::Bytes encode_commitment(const Commitment& c) {
  codec::Writer w;
  w.u8(kCommitTag);
  w.u64le(c.epoch);
  write_root(w, c.root);
  return w.take();
}

std::optional<Commitment> parse_commitment(codec::ByteView payload) {
  codec::Reader r(payload);
  const auto tag = r.u8();
  if (!tag || *tag != kCommitTag) return std::nullopt;
  Commitment c;
  const auto epoch = r.u64le();
  if (!epoch) return std::nullopt;
  c.epoch = *epoch;
  if (!read_root(r, c.root) || !r.done()) return std::nullopt;
  return c;
}

codec::Bytes encode_fraud_proof(const FraudProof& f) {
  codec::Writer w;
  w.u8(kFraudTag);
  w.u64le(f.accused);
  w.u64le(f.epoch);
  write_root(w, f.claimed);
  write_root(w, f.correct);
  return w.take();
}

std::optional<FraudProof> parse_fraud_proof(codec::ByteView payload) {
  codec::Reader r(payload);
  const auto tag = r.u8();
  if (!tag || *tag != kFraudTag) return std::nullopt;
  FraudProof f;
  const auto accused = r.u64le();
  const auto epoch = r.u64le();
  if (!accused || !epoch) return std::nullopt;
  f.accused = *accused;
  f.epoch = *epoch;
  if (!read_root(r, f.claimed) || !read_root(r, f.correct) || !r.done()) {
    return std::nullopt;
  }
  return f;
}

core::Element make_artifact_element(const crypto::Pki& pki,
                                    crypto::ProcessId client, std::uint64_t seq,
                                    codec::Bytes payload) {
  core::Element e;
  e.client = client;
  e.id = core::make_element_id(client, seq);
  e.payload = std::move(payload);
  codec::Writer signing;
  signing.u64le(e.id);
  signing.bytes(e.payload);
  e.sig = pki.sign(client, signing.buffer());
  codec::Writer wire;
  core::serialize_element(wire, e);
  e.wire_size = static_cast<std::uint32_t>(wire.size());
  return e;
}

void TxPool::genesis_into(exec::EpochExecutor& ex) const {
  for (const auto account : accounts) ex.genesis(account, cfg.genesis_amount);
}

TxPool build_tx_pool(const TxPoolConfig& cfg, const crypto::Pki& pki) {
  TxPool pool;
  pool.cfg = cfg;
  const std::uint32_t sessions = std::max<std::uint32_t>(1, cfg.sessions);
  const std::uint32_t span = std::max<std::uint32_t>(1, cfg.client_span);
  pool.accounts.reserve(sessions);
  for (std::uint32_t s = 0; s < sessions; ++s) {
    pool.accounts.push_back(cfg.account_base + s);
  }
  sim::Rng rng(cfg.seed ^ 0x50119ULL);
  std::vector<std::uint64_t> session_nonce(sessions, 0);
  // Sessions share PKI client slots, so per-client element seqs must be
  // globally unique: one counter per client, handed out during generation.
  std::vector<std::uint64_t> client_seq(span, 0);
  pool.elements.reserve(cfg.budget);
  pool.index.reserve(cfg.budget);
  // Striped generation: element k belongs to session k % sessions, so the
  // fleet's striped source offers each session's txs in nonce order.
  for (std::size_t k = 0; k < cfg.budget; ++k) {
    const std::uint32_t s = static_cast<std::uint32_t>(k % sessions);
    const std::uint32_t c = s % span;
    exec::TokenTx tx;
    tx.from = pool.accounts[s];
    std::uint32_t to = s;
    if (sessions > 1) {
      to = static_cast<std::uint32_t>(rng.uniform_u64(sessions - 1));
      if (to >= s) ++to;  // skip self: self-transfers void deterministically
    }
    tx.to = pool.accounts[to];
    tx.amount = 1 + rng.uniform_u64(100);
    tx.nonce = session_nonce[s]++;
    const core::Element e = exec::make_token_element(
        pki, cfg.first_client + c, client_seq[c]++, tx);
    pool.index.emplace(e.id, static_cast<std::uint32_t>(pool.elements.size()));
    pool.elements.push_back(e);
  }
  return pool;
}

bool RollupReport::ok(const RollupConfig& cfg) const {
  if (txs_executed == 0 || !roots_agree || unknown_ids) return false;
  if (commitments_posted == 0 ||
      commitments_consolidated != commitments_posted) {
    return false;
  }
  if (cfg.dishonest) {
    return mismatches == 1 && frauds_caught_in_window == 1 &&
           commitments_ok == commitments_consolidated - 1;
  }
  return mismatches == 0 && commitments_ok == commitments_consolidated;
}

RollupHarness::RollupHarness(const std::vector<load::Target>& targets,
                             std::uint64_t cluster, const crypto::Pki& pki,
                             const TxPool& pool, RollupConfig cfg)
    : cfg_(cfg), pki_(pki), pool_(pool) {
  std::vector<api::ISetchainNode*> node_ptrs;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    net::TcpRpcChannel::Config cc;
    cc.host = targets[i].host;
    cc.port = targets[i].port;
    cc.client_id = cfg_.verifier_client;
    cc.cluster = cluster;
    nodes_.push_back(std::make_unique<net::RemoteNode>(
        std::make_unique<net::TcpRpcChannel>(cc),
        static_cast<crypto::ProcessId>(i)));
    node_ptrs.push_back(nodes_.back().get());
  }
  // kAll submission: the paper's Byzantine-proof artifact path — at least
  // one correct server receives every commitment / fraud proof.
  qc_.emplace(api::make_quorum_client(std::move(node_ptrs), pki_, cfg_.f,
                                      core::Fidelity::kFull,
                                      api::WritePolicy::kAll));
  pool_.genesis_into(op_exec_);
  pool_.genesis_into(ver_exec_);
}

RollupHarness::~RollupHarness() {
  stop_.store(true);
  if (agent_.joinable()) agent_.join();
}

void RollupHarness::start() {
  stop_.store(false);
  agent_ = std::thread([this] { run_agent(); });
}

void RollupHarness::run_agent() {
  const auto interval = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::duration<double>(cfg_.poll_interval_s));
  while (!stop_.load(std::memory_order_relaxed)) {
    step();
    std::this_thread::sleep_for(interval);
  }
}

std::uint64_t RollupHarness::quorum_epoch_estimate() {
  std::vector<std::uint64_t> epochs;
  epochs.reserve(nodes_.size());
  for (const auto& n : nodes_) epochs.push_back(n->epoch());
  std::sort(epochs.begin(), epochs.end(), std::greater<>());
  const std::size_t q = std::min<std::size_t>(cfg_.f, epochs.size() - 1);
  return epochs[q];  // (f+1)-th largest: supported by at least f+1 nodes
}

void RollupHarness::step() {
  if (nodes_.empty()) return;
  if (quorum_epoch_estimate() <= last_exec_) return;  // nothing new; skip get
  const auto view = qc_->get();
  const std::uint64_t top =
      std::min<std::uint64_t>(view.epoch, view.history.size());
  for (std::uint64_t e = last_exec_ + 1; e <= top; ++e) {
    adopt_epoch(view.history[e - 1]);
  }
}

void RollupHarness::adopt_epoch(const core::EpochRecord& rec) {
  // Reconstruct the epoch's elements in canonical (id-sorted) order — the
  // exact order EpochExecutor contracts for. Every id is either an L2 tx
  // from the pre-generated pool or an artifact this harness injected.
  std::vector<core::Element> elems;
  elems.reserve(rec.ids.size());
  bool has_pool_tx = false;
  for (const core::ElementId id : rec.ids) {
    if (const auto it = pool_.index.find(id); it != pool_.index.end()) {
      elems.push_back(pool_.elements[it->second]);
      has_pool_tx = true;
    } else if (const auto it2 = artifacts_.find(id); it2 != artifacts_.end()) {
      elems.push_back(it2->second);
    } else {
      report_.unknown_ids = true;
      core::Element dummy;  // empty payload: voids as kMalformedPayload
      dummy.id = id;
      dummy.client = core::element_client(id);
      elems.push_back(dummy);
    }
  }
  op_exec_.on_epoch(rec, elems);
  ver_exec_.on_epoch(rec, elems);
  if (op_exec_.state_root() != ver_exec_.state_root()) {
    report_.roots_agree = false;
  }
  last_exec_ = rec.number;

  // Verifier role: react to freshly consolidated artifacts.
  for (const core::Element& el : elems) {
    if (const auto it = commit_by_element_.find(el.id);
        it != commit_by_element_.end()) {
      CommitmentStatus& cs = commitments_[it->second];
      cs.consolidated_at = rec.number;
      const auto c = parse_commitment(el.payload);
      if (c && c->epoch >= 1 &&
          c->epoch <= ver_exec_.epoch_roots().size()) {
        cs.checked = true;
        const auto& truth = ver_exec_.epoch_roots()[c->epoch - 1];
        cs.mismatch = (c->root != truth);
        if (cs.mismatch) post_fraud(cs, *c);
      } else {
        cs.checked = true;  // unparseable commitment is itself fraud
        cs.mismatch = true;
        Commitment claimed;
        claimed.epoch = cs.epoch;
        post_fraud(cs, claimed);
      }
    } else if (const auto itf = fraud_by_element_.find(el.id);
               itf != fraud_by_element_.end()) {
      CommitmentStatus& cs = commitments_[itf->second];
      cs.fraud_consolidated_at = rec.number;
      cs.caught_in_window =
          cs.consolidated_at != 0 &&
          rec.number - cs.consolidated_at <= cfg_.fraud_window;
    }
  }

  // Operator role: commit epochs that carried L2 traffic. Artifact-only
  // epochs get no commitment, so the commitment stream terminates once
  // client traffic stops instead of feeding itself forever.
  if (has_pool_tx) post_commitment(rec.number);
}

void RollupHarness::post_commitment(std::uint64_t epoch) {
  Commitment c;
  c.epoch = epoch;
  c.root = op_exec_.epoch_roots()[epoch - 1];
  CommitmentStatus cs;
  cs.epoch = epoch;
  if (cfg_.dishonest &&
      commitments_.size() == cfg_.corrupt_commit_index) {
    c.root[0] ^= 0xFF;  // the lie the verifier must catch
    cs.corrupted = true;
  }
  core::Element el = make_artifact_element(pki_, cfg_.operator_client,
                                           op_seq_++, encode_commitment(c));
  cs.element = el.id;
  artifacts_.emplace(el.id, el);
  commit_by_element_.emplace(el.id, commitments_.size());
  commitments_.push_back(cs);
  ++report_.commitments_posted;
  qc_->add(std::move(el));
}

void RollupHarness::post_fraud(CommitmentStatus& cs, const Commitment& c) {
  if (cs.fraud_element != 0) return;  // already contested
  FraudProof f;
  f.accused = cs.element;
  f.epoch = cs.epoch;
  f.claimed = c.root;
  if (cs.epoch >= 1 && cs.epoch <= ver_exec_.epoch_roots().size()) {
    f.correct = ver_exec_.epoch_roots()[cs.epoch - 1];
  }
  core::Element el = make_artifact_element(pki_, cfg_.verifier_client,
                                           ver_seq_++, encode_fraud_proof(f));
  cs.fraud_element = el.id;
  artifacts_.emplace(el.id, el);
  fraud_by_element_.emplace(el.id, commit_by_element_.at(cs.element));
  ++report_.fraud_proofs_posted;
  qc_->add(std::move(el));
}

bool RollupHarness::settled() const {
  for (const auto& cs : commitments_) {
    if (cs.consolidated_at == 0) return false;
    if (cs.mismatch && cs.fraud_consolidated_at == 0) return false;
  }
  return true;
}

RollupReport RollupHarness::build_report() {
  report_.last_epoch = last_exec_;
  report_.epochs_executed = op_exec_.epochs_executed();
  report_.txs_executed = op_exec_.executed();
  report_.txs_voided = op_exec_.voided();
  report_.commitments_consolidated = 0;
  report_.commitments_ok = 0;
  report_.mismatches = 0;
  report_.fraud_proofs_consolidated = 0;
  report_.frauds_caught_in_window = 0;
  report_.max_fraud_detect_epochs = 0;
  for (const auto& cs : commitments_) {
    if (cs.consolidated_at != 0) ++report_.commitments_consolidated;
    if (cs.checked && !cs.mismatch) ++report_.commitments_ok;
    if (cs.mismatch) ++report_.mismatches;
    if (cs.fraud_consolidated_at != 0) {
      ++report_.fraud_proofs_consolidated;
      if (cs.caught_in_window) {
        ++report_.frauds_caught_in_window;
        report_.max_fraud_detect_epochs =
            std::max(report_.max_fraud_detect_epochs,
                     cs.fraud_consolidated_at - cs.consolidated_at);
      }
    }
  }
  report_.commitments = commitments_;
  return report_;
}

RollupReport RollupHarness::finish() {
  if (finished_) return report_;
  finished_ = true;
  stop_.store(true);
  if (agent_.joinable()) agent_.join();
  // Settle: trailing commitments (and any fraud proof they trigger) still
  // need an epoch of their own to consolidate; keep polling while the
  // cluster is up.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(cfg_.settle_timeout_s));
  const auto interval = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::duration<double>(std::max(0.02, cfg_.poll_interval_s / 2)));
  while (std::chrono::steady_clock::now() < deadline) {
    step();
    if (settled()) break;
    std::this_thread::sleep_for(interval);
  }
  return build_report();
}

}  // namespace setchain::workload::rollup
