#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/quorum_client.hpp"
#include "codec/bytes.hpp"
#include "core/element.hpp"
#include "crypto/pki.hpp"
#include "exec/executor.hpp"
#include "load/fleet.hpp"
#include "net/remote_node.hpp"

namespace setchain::workload::rollup {

// ---------------------------------------------------------------------------
// Optimistic rollup over Setchain ("Fast and Secure Decentralized Optimistic
// Rollups Using Setchain", arXiv 2406.02316): the Setchain is the rollup's
// data-availability / sequencing layer. L2 clients inject signed token
// transactions as ordinary elements; an OPERATOR executes each consolidated
// epoch and posts a commitment (the post-epoch state root) back into the
// Setchain; VERIFIERS re-execute independently and, when a commitment lies,
// post a fraud proof. A commitment consolidated at epoch P becomes final
// unless a fraud proof consolidates by epoch P + fraud_window — the fraud
// window rides the existing epoch barrier instead of wall-clock timers.
// ---------------------------------------------------------------------------

/// Rollup artifact payload tags (distinct from exec::kTokenTxTag, so token
/// execution deterministically voids artifacts as kMalformedPayload and
/// artifact parsing rejects token txs).
constexpr std::uint8_t kCommitTag = 0x43;  // 'C'
constexpr std::uint8_t kFraudTag = 0x46;   // 'F'

/// Operator commitment: "after epoch `epoch`, the L2 state root is `root`".
struct Commitment {
  std::uint64_t epoch = 0;
  exec::LedgerState::StateRoot root{};
};
codec::Bytes encode_commitment(const Commitment& c);
std::optional<Commitment> parse_commitment(codec::ByteView payload);

/// Verifier fraud proof: commitment element `accused` claimed `claimed` for
/// `epoch`, but re-execution yields `correct`.
struct FraudProof {
  core::ElementId accused = 0;
  std::uint64_t epoch = 0;
  exec::LedgerState::StateRoot claimed{};
  exec::LedgerState::StateRoot correct{};
};
codec::Bytes encode_fraud_proof(const FraudProof& f);
std::optional<FraudProof> parse_fraud_proof(codec::ByteView payload);

/// Wrap an arbitrary artifact payload into a signed Setchain element (same
/// id/signature scheme as exec::make_token_element).
core::Element make_artifact_element(const crypto::Pki& pki,
                                    crypto::ProcessId client, std::uint64_t seq,
                                    codec::Bytes payload);

// ---------------------------------------------------------------------------
// L2 transaction pool: pre-generated (and pre-signed) outside the measured
// window, striped by fleet session. Each SESSION owns one L2 account and a
// private nonce sequence; a session's elements flow over one TCP connection
// to one node, so collector order preserves nonce order and honest traffic
// executes without void cascades (remaining voids are deterministic and
// reported, never a correctness failure).
// ---------------------------------------------------------------------------

struct TxPoolConfig {
  std::uint32_t sessions = 64;
  std::size_t budget = 10'000;  ///< total pre-generated transactions
  /// PKI client ids used for tx signing: first_client .. first_client +
  /// client_span - 1, sessions round-robin across them. Keep artifact
  /// clients (operator/verifier) OUT of this span.
  crypto::ProcessId first_client = 0;
  std::uint32_t client_span = 1;
  exec::AccountId account_base = 1'000'000;
  exec::Amount genesis_amount = 1'000'000'000;
  std::uint64_t seed = 42;
};

struct TxPool {
  TxPoolConfig cfg;
  /// Striped for PooledElementSource: session s consumes s, s+S, s+2S, ...
  std::vector<core::Element> elements;
  /// id -> index into `elements`, for epoch replay by any rollup agent.
  std::unordered_map<core::ElementId, std::uint32_t> index;
  /// session -> its L2 account.
  std::vector<exec::AccountId> accounts;

  /// Apply the pool's genesis allocation to an executor (operator and
  /// verifier must seed identically, like any chain genesis).
  void genesis_into(exec::EpochExecutor& ex) const;
};

TxPool build_tx_pool(const TxPoolConfig& cfg, const crypto::Pki& pki);

// ---------------------------------------------------------------------------
// The rollup agents.
// ---------------------------------------------------------------------------

struct RollupConfig {
  std::uint32_t f = 1;
  /// Epoch-barrier fraud window: a commitment consolidated at epoch P must
  /// be contested by a fraud proof consolidating at Q <= P + fraud_window.
  /// Sized in epochs, and epochs are FAST here (every node's collector
  /// seals on a 50 ms timeout, so n nodes produce an epoch every
  /// collector_timeout / n) — 64 epochs is on the order of a second of
  /// wall time, which still leaves the verifier's poll cadence plus two
  /// consolidations of headroom. Production rollups use windows of days.
  std::uint32_t fraud_window = 64;
  /// Dishonest-operator mode: corrupt the root of one posted commitment
  /// (0-based `corrupt_commit_index`-th). The verifier must catch it.
  bool dishonest = false;
  std::uint64_t corrupt_commit_index = 1;
  crypto::ProcessId operator_client = 0;
  crypto::ProcessId verifier_client = 0;
  double poll_interval_s = 0.25;
  /// finish(): how long to keep polling for trailing consolidations.
  double settle_timeout_s = 20.0;
};

/// Lifecycle of one posted commitment.
struct CommitmentStatus {
  core::ElementId element = 0;
  std::uint64_t epoch = 0;      ///< the L2 epoch it commits
  bool corrupted = false;       ///< operator lied about this one
  std::uint64_t consolidated_at = 0;  ///< P; 0 = still pending
  bool checked = false;         ///< verifier compared roots
  bool mismatch = false;
  core::ElementId fraud_element = 0;
  std::uint64_t fraud_consolidated_at = 0;  ///< Q; 0 = pending/none
  bool caught_in_window = false;            ///< Q != 0 && Q - P <= window
};

struct RollupReport {
  std::uint64_t last_epoch = 0;
  std::uint64_t epochs_executed = 0;
  std::uint64_t txs_executed = 0;
  std::uint64_t txs_voided = 0;
  std::uint64_t commitments_posted = 0;
  std::uint64_t commitments_consolidated = 0;
  std::uint64_t commitments_ok = 0;  ///< checked, roots matched
  std::uint64_t mismatches = 0;
  std::uint64_t fraud_proofs_posted = 0;
  std::uint64_t fraud_proofs_consolidated = 0;
  std::uint64_t frauds_caught_in_window = 0;
  std::uint64_t max_fraud_detect_epochs = 0;  ///< max Q - P over caught frauds
  bool roots_agree = true;   ///< operator and verifier executors never diverged
  bool unknown_ids = false;  ///< an adopted epoch referenced an unknown element
  std::vector<CommitmentStatus> commitments;

  /// Mode-aware verdict. Honest: every posted commitment consolidated,
  /// checked, and matched. Dishonest: exactly the corrupted commitment
  /// mismatched AND its fraud proof consolidated inside the window; every
  /// other commitment clean. Both: txs executed, executors agreed, no
  /// unknown ids.
  bool ok(const RollupConfig& cfg) const;
};

/// Runs the operator and the verifier as one background agent polling a
/// QuorumClient over the live cluster: adopt new f+1-agreed epochs, replay
/// them through two independent EpochExecutors, post commitments (operator)
/// and fraud proofs (verifier). Single agent thread; start() it alongside a
/// LoadFleet phase, finish() after traffic stops (while the cluster is
/// still up) to settle trailing consolidations and collect the report.
///
/// step() is exposed for single-threaded use in tests: construct, call
/// step() between traffic injections, then finish() (never start()ed,
/// finish() just settles on the calling thread).
class RollupHarness {
 public:
  RollupHarness(const std::vector<load::Target>& targets, std::uint64_t cluster,
                const crypto::Pki& pki, const TxPool& pool, RollupConfig cfg);
  ~RollupHarness();
  RollupHarness(const RollupHarness&) = delete;
  RollupHarness& operator=(const RollupHarness&) = delete;

  void start();
  /// One poll round: adopt + execute new epochs, post artifacts. Must not
  /// be called while the agent thread runs.
  void step();
  /// Stop the agent thread (if any), settle pending artifacts, and build
  /// the final report.
  RollupReport finish();

 private:
  void run_agent();
  /// f+1-supported cluster epoch from cheap epoch RPCs (skip full gets
  /// while nothing new consolidated — snapshot RPCs are the expensive part).
  std::uint64_t quorum_epoch_estimate();
  void adopt_epoch(const core::EpochRecord& rec);
  void post_commitment(std::uint64_t epoch);
  void post_fraud(CommitmentStatus& cs, const Commitment& c);
  bool settled() const;
  RollupReport build_report();

  RollupConfig cfg_;
  const crypto::Pki& pki_;
  const TxPool& pool_;
  std::vector<std::unique_ptr<net::RemoteNode>> nodes_;
  std::optional<api::QuorumClient> qc_;

  exec::EpochExecutor op_exec_;
  exec::EpochExecutor ver_exec_;
  std::uint64_t last_exec_ = 0;

  /// Elements this harness itself injected (commitments + fraud proofs),
  /// for epoch replay: id -> element.
  std::unordered_map<core::ElementId, core::Element> artifacts_;
  std::unordered_map<core::ElementId, std::size_t> commit_by_element_;
  std::unordered_map<core::ElementId, std::size_t> fraud_by_element_;
  std::vector<CommitmentStatus> commitments_;
  std::uint64_t op_seq_ = 0;
  std::uint64_t ver_seq_ = 0;

  RollupReport report_;
  std::thread agent_;
  std::atomic<bool> stop_{false};
  bool finished_ = false;
};

}  // namespace setchain::workload::rollup
