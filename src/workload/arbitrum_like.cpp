#include "workload/arbitrum_like.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "codec/hex.hpp"

namespace setchain::workload {

ArbitrumLikeGenerator::ArbitrumLikeGenerator(std::uint64_t seed, ArbitrumLikeConfig cfg)
    : cfg_(cfg), seed_(seed), size_rng_(seed ^ 0x517E5EEDULL) {
  // Fit lognormal to the target mean m and stddev s:
  //   sigma^2 = ln(1 + (s/m)^2),  mu = ln(m) - sigma^2/2.
  const double cv = cfg_.stddev_size / cfg_.mean_size;
  const double sigma2 = std::log(1.0 + cv * cv);
  sigma_ = std::sqrt(sigma2);
  mu_ = std::log(cfg_.mean_size) - sigma2 / 2.0;
}

std::uint32_t ArbitrumLikeGenerator::sample_size() {
  const double raw = size_rng_.lognormal(mu_, sigma_);
  const double clipped =
      std::clamp(raw, static_cast<double>(cfg_.min_size), static_cast<double>(cfg_.max_size));
  return static_cast<std::uint32_t>(clipped);
}

codec::Bytes ArbitrumLikeGenerator::make_payload(std::uint64_t element_id,
                                                 std::uint32_t size) const {
  // Deterministic stream keyed by (generator seed, element id).
  std::uint64_t s = seed_ ^ (element_id * 0x9E3779B97F4A7C15ULL);
  auto next = [&s] { return sim::splitmix64(s); };

  codec::Bytes out;
  out.reserve(size);

  // Header: version, chain id, nonce — ASCII-framed like an RPC payload so
  // the batch-level codec sees the cross-transaction redundancy Brotli sees
  // on the real trace.
  codec::append(out, "{\"type\":\"0x2\",\"chainId\":\"0xa4b1\",\"nonce\":\"0x");
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llx",
                static_cast<unsigned long long>(next() % 100000));
  codec::append(out, buf);
  codec::append(out, "\",\"from\":\"0x");
  // Pooled sender/receiver addresses: a small hot set dominates, like real
  // L2 traffic (sequencer batches are dominated by popular contracts).
  const std::uint64_t from_idx = next() % cfg_.address_pool;
  const std::uint64_t to_idx = next() % cfg_.address_pool;
  auto append_address = [&out](std::uint64_t idx) {
    // 20-byte address rendered as hex, deterministic per pool index.
    std::uint64_t a = idx * 0xC2B2AE3D27D4EB4FULL + 0x165667B19E3779F9ULL;
    for (int i = 0; i < 5; ++i) {
      char word[16];
      std::snprintf(word, sizeof word, "%08llx",
                    static_cast<unsigned long long>((a >> (i * 8)) & 0xFFFFFFFFULL));
      codec::append(out, word);
    }
  };
  append_address(from_idx);
  codec::append(out, "\",\"to\":\"0x");
  append_address(to_idx);
  codec::append(out, "\",\"selector\":\"0x");
  std::snprintf(buf, sizeof buf, "%08llx",
                static_cast<unsigned long long>((next() % cfg_.selector_pool) *
                                                0x9E3779B1ULL));
  codec::append(out, buf);
  codec::append(out, "\",\"data\":\"0x");

  // Calldata: 32-byte ABI words, most of which are small integers or
  // addresses => long runs of '0' characters, like real calldata.
  while (out.size() + 2 < size) {
    const std::uint64_t kind = next() % 4;
    if (kind == 0) {
      // Pooled address argument.
      codec::append(out, "000000000000000000000000");
      append_address(next() % cfg_.address_pool);
    } else if (kind == 1) {
      // Small value: 56 zeros + 8 hex digits.
      codec::append(out, "00000000000000000000000000000000000000000000000000000000");
      std::snprintf(buf, sizeof buf, "%08llx",
                    static_cast<unsigned long long>(next() & 0xFFFFFFFFULL));
      codec::append(out, buf);
    } else if (kind == 2) {
      // Zero word.
      for (int i = 0; i < 64; ++i) out.push_back('0');
    } else {
      // High-entropy word (hash-like argument).
      for (int i = 0; i < 8; ++i) {
        std::snprintf(buf, sizeof buf, "%08llx",
                      static_cast<unsigned long long>(next() & 0xFFFFFFFFULL));
        codec::append(out, buf);
      }
    }
  }
  out.resize(size - 2);
  codec::append(out, "\"}");
  return out;
}

}  // namespace setchain::workload
