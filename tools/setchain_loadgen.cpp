// setchain_loadgen: open-loop load generator for live Setchain clusters.
//
// Drives thousands of concurrent client sessions (one epoll loop, one
// thread) against either a self-booted in-process cluster (--nodes N) or an
// external one (--node host:port per daemon), at a target arrival rate that
// does NOT slow down when the cluster does — shed arrivals and queue peaks
// are reported instead, so overload is measurable rather than hidden.
//
//   # 2000 open-loop rollup clients against a self-booted 4-node consensus
//   # cluster, 20 s at 1500 adds/s, JSON trajectory to BENCH_load.json:
//   ./setchain_loadgen --workload rollup --ledger consensus --sessions 2000 \
//       --rate 1500 --duration-s 20 --json BENCH_load.json --check
//
//   # Rate curve (one phase per rate, each --duration-s long):
//   ./setchain_loadgen --rates 500,1000,2000 --duration-s 10
//
// Workloads: kv (opaque signed puts, Arbitrum-like sizes) or rollup (L2
// token txs + operator epoch commitments + fraud-proof window; see
// src/workload/rollup.hpp). --dishonest-operator makes the rollup operator
// corrupt one commitment — with --check, the run fails unless the verifier
// proves the fraud inside the window.
//
// --check exit codes: 0 healthy, 1 a health assertion failed, 2 bad usage.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/element.hpp"
#include "crypto/pki.hpp"
#include "load/arrival.hpp"
#include "load/fleet.hpp"
#include "load/local_cluster.hpp"
#include "load/report.hpp"
#include "net/tcp.hpp"
#include "runner/scenario.hpp"
#include "workload/arbitrum_like.hpp"
#include "workload/rollup.hpp"

namespace {

using namespace setchain;

struct Options {
  std::uint32_t nodes = 4;           // self-boot node count
  std::vector<load::Target> extern_nodes;  // non-empty = external cluster
  std::uint32_t sessions = 64;
  std::uint32_t window = 8;
  std::uint32_t max_pending = 256;
  std::vector<double> rates = {0};   // one phase per rate; 0 = closed loop
  double duration_s = 5.0;
  load::ArrivalKind arrival = load::ArrivalKind::kPoisson;
  double burst_on_s = 1.0;
  double burst_off_s = 4.0;
  double burst_rate = 0;
  std::string workload = "kv";
  runner::Algorithm algo = runner::Algorithm::kHashchain;
  runner::LedgerMode ledger = runner::LedgerMode::kFixedSequencer;
  std::uint64_t seed = 42;
  std::uint32_t fraud_window = 64;
  bool dishonest = false;
  double settle_s = 20.0;
  std::string json_path;
  bool check = false;
  bool smoke = false;
};

bool parse_rates(const std::string& s, std::vector<double>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    try {
      out.push_back(std::stod(s.substr(pos, comma - pos)));
    } catch (...) {
      return false;
    }
    pos = comma + 1;
  }
  return !out.empty();
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--nodes N | --node host:port ...] [--sessions S]\n"
      "  [--window W] [--max-pending P] [--rate R | --rates r1,r2,...]\n"
      "  [--arrival poisson|uniform|burst] [--burst-on S] [--burst-off S]\n"
      "  [--burst-rate R] [--duration-s D] [--workload kv|rollup]\n"
      "  [--algo vanilla|compresschain|hashchain] [--ledger sequencer|consensus]\n"
      "  [--seed N] [--fraud-window E] [--dishonest-operator] [--settle-s S]\n"
      "  [--json PATH] [--check] [--smoke]\n",
      argv0);
  return 2;
}

struct HealthCheck {
  bool ok = true;
  std::vector<std::string> failures;
  void require(bool cond, const std::string& what) {
    if (!cond) {
      ok = false;
      failures.push_back(what);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (a == "--nodes") opt.nodes = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--node") {
      std::string host;
      std::uint16_t port = 0;
      if (!net::parse_host_port(next(), host, port)) return usage(argv[0]);
      opt.extern_nodes.push_back(load::Target{host, port});
    } else if (a == "--sessions") opt.sessions = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--window") opt.window = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--max-pending") opt.max_pending = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--rate") opt.rates = {std::stod(next())};
    else if (a == "--rates") {
      if (!parse_rates(next(), opt.rates)) return usage(argv[0]);
    } else if (a == "--arrival") {
      const std::string k = next();
      if (k == "poisson") opt.arrival = load::ArrivalKind::kPoisson;
      else if (k == "uniform") opt.arrival = load::ArrivalKind::kUniform;
      else if (k == "burst") opt.arrival = load::ArrivalKind::kBurst;
      else return usage(argv[0]);
    } else if (a == "--burst-on") opt.burst_on_s = std::stod(next());
    else if (a == "--burst-off") opt.burst_off_s = std::stod(next());
    else if (a == "--burst-rate") opt.burst_rate = std::stod(next());
    else if (a == "--duration-s") opt.duration_s = std::stod(next());
    else if (a == "--workload") {
      opt.workload = next();
      if (opt.workload != "kv" && opt.workload != "rollup") return usage(argv[0]);
    } else if (a == "--algo") {
      const auto algo = runner::parse_algorithm(next());
      if (!algo) return usage(argv[0]);
      opt.algo = *algo;
    } else if (a == "--ledger") {
      const auto m = runner::parse_ledger_mode(next());
      if (!m) return usage(argv[0]);
      opt.ledger = *m;
    } else if (a == "--seed") opt.seed = std::stoull(next());
    else if (a == "--fraud-window") opt.fraud_window = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--dishonest-operator") opt.dishonest = true;
    else if (a == "--settle-s") opt.settle_s = std::stod(next());
    else if (a == "--json") opt.json_path = next();
    else if (a == "--check") opt.check = true;
    else if (a == "--smoke") {
      opt.smoke = true;
      opt.check = true;
      opt.nodes = 4;
      opt.sessions = 32;
      opt.rates = {300};
      opt.duration_s = 3.0;
      opt.workload = "rollup";
    } else {
      std::fprintf(stderr, "unknown arg %s\n", a.c_str());
      return usage(argv[0]);
    }
  }

  const bool self_boot = opt.extern_nodes.empty();
  const std::uint32_t n = self_boot
                              ? opt.nodes
                              : static_cast<std::uint32_t>(opt.extern_nodes.size());
  if (n == 0 || opt.sessions == 0) return usage(argv[0]);

  // Shared deployment parameters (must match the daemons in external mode).
  net::NodeHostConfig ncfg;
  ncfg.n = n;
  ncfg.f = (n - 1) / 3;
  ncfg.algorithm = opt.algo;
  ncfg.ledger_mode = opt.ledger;
  ncfg.seed = opt.seed;
  ncfg.collector_limit = 64;
  ncfg.collector_timeout = sim::from_millis(50);
  ncfg.block_interval = sim::from_millis(50);
  ncfg.sync_interval = sim::from_millis(400);
  const std::uint64_t cluster = net::NodeHost::cluster_id_of(ncfg);

  crypto::Pki pki(ncfg.seed);
  for (crypto::ProcessId p = 0; p < ncfg.n + ncfg.client_slots; ++p) {
    pki.register_process(p);
  }

  // Pre-generate (and pre-sign) the element supply outside the measured
  // window, sized to the offered schedule plus slack.
  double offered_total = 0;
  for (const double r : opt.rates) {
    offered_total += (r > 0 ? r : 20'000.0) * opt.duration_s;
  }
  const std::size_t budget = std::min<std::size_t>(
      400'000, static_cast<std::size_t>(offered_total * 1.3) + 1024);

  std::vector<core::Element> kv_pool;
  workload::rollup::TxPool tx_pool;
  const bool rollup = opt.workload == "rollup";
  if (rollup) {
    workload::rollup::TxPoolConfig pc;
    pc.sessions = opt.sessions;
    pc.budget = budget;
    pc.first_client = ncfg.n;
    // Last two client slots are reserved for the operator/verifier agents.
    pc.client_span = ncfg.client_slots > 2 ? ncfg.client_slots - 2 : 1;
    pc.seed = opt.seed;
    tx_pool = workload::rollup::build_tx_pool(pc, pki);
  } else {
    workload::ArbitrumLikeGenerator gen(opt.seed ^ 0xBE7C4ULL);
    core::ElementFactory factory(gen, pki, core::Fidelity::kFull);
    kv_pool.reserve(budget);
    for (std::size_t s = 0; s < budget; ++s) {
      kv_pool.push_back(factory.make(ncfg.n, s));
    }
  }

  std::unique_ptr<load::LocalCluster> local;
  std::vector<load::Target> targets = opt.extern_nodes;
  if (self_boot) {
    local = std::make_unique<load::LocalCluster>(ncfg);
    local->start();
    targets = local->targets();
    // Let the server mesh dial before load starts.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  }

  load::FleetConfig fc;
  fc.targets = targets;
  fc.cluster = cluster;
  fc.sessions = opt.sessions;
  fc.window = opt.window;
  fc.max_pending = opt.max_pending;
  load::LoadFleet fleet(fc);
  const std::uint32_t connected = fleet.connect();

  std::unique_ptr<workload::rollup::RollupHarness> harness;
  if (rollup) {
    workload::rollup::RollupConfig rc;
    rc.f = ncfg.f;
    rc.fraud_window = opt.fraud_window;
    rc.dishonest = opt.dishonest;
    rc.settle_timeout_s = opt.settle_s;
    rc.operator_client = ncfg.n + ncfg.client_slots - 2;
    rc.verifier_client = ncfg.n + ncfg.client_slots - 1;
    harness = std::make_unique<workload::rollup::RollupHarness>(
        targets, cluster, pki, tx_pool, rc);
    harness->start();
  }

  load::PooledElementSource source(rollup ? tx_pool.elements : kv_pool,
                                   opt.sessions);
  std::vector<load::PhaseStats> phases;
  for (const double rate : opt.rates) {
    load::ArrivalConfig ac;
    ac.kind = opt.arrival;
    ac.rate = rate;
    ac.burst_on_s = opt.burst_on_s;
    ac.burst_off_s = opt.burst_off_s;
    ac.burst_rate = opt.burst_rate;
    ac.seed = opt.seed + phases.size();
    phases.push_back(fleet.run_phase(source, ac, opt.duration_s));
  }
  const load::ProcSample proc = load::sample_proc();

  workload::rollup::RollupReport rollup_report;
  workload::rollup::RollupConfig rollup_cfg;
  if (harness != nullptr) {
    rollup_cfg.dishonest = opt.dishonest;
    rollup_cfg.fraud_window = opt.fraud_window;
    rollup_report = harness->finish();
  }
  fleet.close();

  net::ITransport::Counters transport{};
  if (local != nullptr) transport = local->counters_total();
  if (local != nullptr) local->shutdown();

  // Aggregate + health verdict.
  load::PhaseStats total;
  for (const auto& ph : phases) {
    total.offered += ph.offered;
    total.shed += ph.shed;
    total.sent += ph.sent;
    total.acked += ph.acked;
    total.accepted += ph.accepted;
    total.io_errors += ph.io_errors;
    total.decode_errors += ph.decode_errors;
    total.pending_end += ph.pending_end;
    total.in_flight_end += ph.in_flight_end;
    total.wall_s += ph.wall_s;
    total.latency_us.merge(ph.latency_us);
  }

  HealthCheck health;
  health.require(connected == opt.sessions,
                 "sessions_connected == sessions");
  health.require(!phases.empty() && phases.back().sessions_alive == opt.sessions,
                 "sessions_alive == sessions");
  health.require(total.decode_errors == 0, "fleet decode_errors == 0");
  health.require(total.io_errors == 0, "fleet io_errors == 0");
  health.require(total.shed == 0, "no shed arrivals");
  health.require(total.acked > 0 && total.accepted > 0, "adds acked+accepted");
  if (local != nullptr) {
    health.require(transport.decode_errors == 0, "transport decode_errors == 0");
    health.require(transport.send_drops == 0, "transport send_drops == 0");
  }
  if (harness != nullptr) {
    health.require(rollup_report.ok(rollup_cfg), "rollup verdict ok");
  }

  load::JsonWriter w;
  w.begin_object();
  w.kv("bench", "loadgen");
  w.key("config");
  w.begin_object();
  w.kv("nodes", n);
  w.kv("self_boot", self_boot);
  w.kv("sessions", opt.sessions);
  w.kv("window", opt.window);
  w.kv("max_pending", opt.max_pending);
  w.kv("workload", opt.workload);
  w.kv("arrival", load::arrival_kind_name(opt.arrival));
  w.kv("algo", runner::algorithm_name(opt.algo));
  w.kv("ledger", runner::ledger_mode_name(opt.ledger));
  w.kv("seed", opt.seed);
  w.kv("duration_s_per_phase", opt.duration_s);
  w.key("rates");
  w.begin_array();
  for (const double r : opt.rates) w.value(r);
  w.end_array();
  if (rollup) {
    w.kv("fraud_window", opt.fraud_window);
    w.kv("dishonest_operator", opt.dishonest);
  }
  w.end_object();
  w.key("phases");
  w.begin_array();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const std::string label = "phase" + std::to_string(i);
    load::append_phase_json(w, label.c_str(), opt.rates[i], phases[i]);
  }
  w.end_array();
  w.key("totals");
  w.begin_object();
  w.kv("offered", total.offered);
  w.kv("shed", total.shed);
  w.kv("sent", total.sent);
  w.kv("acked", total.acked);
  w.kv("accepted", total.accepted);
  w.kv("io_errors", total.io_errors);
  w.kv("decode_errors", total.decode_errors);
  w.kv("pending_end", total.pending_end);
  w.kv("in_flight_end", total.in_flight_end);
  w.kv("acked_per_sec",
       total.wall_s > 0 ? static_cast<double>(total.acked) / total.wall_s : 0.0);
  w.key("latency_ms");
  w.begin_object();
  w.kv("p50", static_cast<double>(total.latency_us.percentile(0.50)) / 1000.0);
  w.kv("p90", static_cast<double>(total.latency_us.percentile(0.90)) / 1000.0);
  w.kv("p99", static_cast<double>(total.latency_us.percentile(0.99)) / 1000.0);
  w.kv("p999", static_cast<double>(total.latency_us.percentile(0.999)) / 1000.0);
  w.kv("max", static_cast<double>(total.latency_us.max()) / 1000.0);
  w.end_object();
  w.end_object();
  if (local != nullptr) {
    // Server-side transport counters: send_drops_client + send_queue_peak
    // tell server overload apart from server slowness (a slow server grows
    // latency; an overloaded one drops acks into a full queue).
    w.key("transport");
    w.begin_object();
    w.kv("frames_tx", transport.frames_sent);
    w.kv("frames_rx", transport.frames_received);
    w.kv("send_drops", transport.send_drops);
    w.kv("send_drops_client", transport.send_drops_client);
    w.kv("send_queue_peak", transport.send_queue_peak);
    w.kv("decode_errors", transport.decode_errors);
    w.kv("reconnects", transport.reconnects);
    w.end_object();
  }
  w.key("process");
  w.begin_object();
  w.kv("threads_live", proc.threads);
  w.kv("vm_hwm_kb", proc.vm_hwm_kb);
  w.end_object();
  if (harness != nullptr) {
    const auto& rr = rollup_report;
    w.key("rollup");
    w.begin_object();
    w.kv("last_epoch", rr.last_epoch);
    w.kv("epochs_executed", rr.epochs_executed);
    w.kv("txs_executed", rr.txs_executed);
    w.kv("txs_voided", rr.txs_voided);
    w.kv("commitments_posted", rr.commitments_posted);
    w.kv("commitments_consolidated", rr.commitments_consolidated);
    w.kv("commitments_ok", rr.commitments_ok);
    w.kv("mismatches", rr.mismatches);
    w.kv("fraud_proofs_posted", rr.fraud_proofs_posted);
    w.kv("fraud_proofs_consolidated", rr.fraud_proofs_consolidated);
    w.kv("frauds_caught_in_window", rr.frauds_caught_in_window);
    w.kv("max_fraud_detect_epochs", rr.max_fraud_detect_epochs);
    w.kv("roots_agree", rr.roots_agree);
    w.kv("ok", rr.ok(rollup_cfg));
    w.end_object();
  }
  w.key("check");
  w.begin_object();
  w.kv("enabled", opt.check);
  w.kv("ok", health.ok);
  w.key("failures");
  w.begin_array();
  for (const auto& f : health.failures) w.value(f);
  w.end_array();
  w.end_object();
  w.end_object();
  load::emit_report(w.str(), opt.json_path);

  if (opt.check && !health.ok) {
    for (const auto& f : health.failures) {
      std::fprintf(stderr, "loadgen check FAILED: %s\n", f.c_str());
    }
    return 1;
  }
  if (opt.check) std::fprintf(stderr, "loadgen check OK\n");
  return 0;
}
