// setchain_node — one live Setchain server process.
//
// Hosts a full-fidelity Setchain node (vanilla / compresschain / hashchain)
// behind a TCP transport: the replicated ledger, the Hashchain batch
// exchange, and the client RPC service all speak the length-prefixed wire
// protocol of docs/WIRE_FORMAT.md. Spawn n of these (one per --id) with the
// same --seed/--n/--f/--algo and the full --peer list, then point clients
// (examples/remote_quorum_client) at them. See README "Run a live cluster".

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/node_host.hpp"
#include "net/tcp.hpp"
#include "storage/storage.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --id I --n N --listen HOST:PORT --peer HOST:PORT [xN, id order]\n"
      "          [--f F] [--algo vanilla|compresschain|hashchain] [--seed S]\n"
      "          [--ledger sequencer|consensus] [--timeout-propose-ms T]\n"
      "          [--collector K] [--collector-timeout-ms T] [--block-interval-ms B]\n"
      "          [--block-bytes BYTES] [--clients C] [--quiet]\n"
      "          [--data-dir DIR] [--fsync always|interval|off]\n"
      "          [--snapshot-epochs E] [--byz-consensus]\n"
      "\n"
      "Every daemon (and client) of one cluster must share --seed, --n, --f,\n"
      "--algo and --ledger: the PKI keys and the cluster id derive from them.\n"
      "--ledger consensus replaces the fixed sequencer with wire-level\n"
      "consensus: the cluster keeps committing with any f nodes crashed.\n"
      "--data-dir makes the node durable: committed blocks are WAL-logged\n"
      "there, snapshots compact the log every E epochs (default 8), and a\n"
      "restart recovers the node's state from disk before it rejoins.\n"
      "--byz-consensus (TEST ONLY, consensus mode) runs this node as a\n"
      "Byzantine adversary: it equivocates proposals, double-votes, forges\n"
      "votes and serves junk sync — honest peers must mask it and stay live.\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace setchain;

  net::NodeHostConfig cfg;
  cfg.snapshot_epochs = 8;  // effective only with --data-dir
  storage::StorageConfig store_cfg;
  std::string listen;
  std::vector<std::string> peers;
  bool quiet = false;
  bool have_f = false;

  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      usage(argv[0]);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--id") {
      cfg.id = static_cast<std::uint32_t>(std::atoi(need_value(i)));
    } else if (arg == "--n") {
      cfg.n = static_cast<std::uint32_t>(std::atoi(need_value(i)));
    } else if (arg == "--f") {
      cfg.f = static_cast<std::uint32_t>(std::atoi(need_value(i)));
      have_f = true;
    } else if (arg == "--algo") {
      const auto a = runner::parse_algorithm(need_value(i));
      if (!a) {
        usage(argv[0]);
        return 2;
      }
      cfg.algorithm = *a;
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(need_value(i), nullptr, 10);
    } else if (arg == "--ledger") {
      const auto m = runner::parse_ledger_mode(need_value(i));
      if (!m) {
        usage(argv[0]);
        return 2;
      }
      cfg.ledger_mode = *m;
    } else if (arg == "--timeout-propose-ms") {
      cfg.timeout_propose = sim::from_millis(std::atof(need_value(i)));
    } else if (arg == "--listen") {
      listen = need_value(i);
    } else if (arg == "--peer") {
      peers.emplace_back(need_value(i));
    } else if (arg == "--collector") {
      cfg.collector_limit = static_cast<std::uint32_t>(std::atoi(need_value(i)));
    } else if (arg == "--collector-timeout-ms") {
      cfg.collector_timeout = sim::from_millis(std::atof(need_value(i)));
    } else if (arg == "--block-interval-ms") {
      cfg.block_interval = sim::from_millis(std::atof(need_value(i)));
    } else if (arg == "--block-bytes") {
      cfg.max_block_bytes = std::strtoull(need_value(i), nullptr, 10);
    } else if (arg == "--clients") {
      cfg.client_slots = static_cast<std::uint32_t>(std::atoi(need_value(i)));
    } else if (arg == "--data-dir") {
      store_cfg.dir = need_value(i);
    } else if (arg == "--fsync") {
      const auto m = storage::parse_fsync_mode(need_value(i));
      if (!m) {
        usage(argv[0]);
        return 2;
      }
      store_cfg.fsync = *m;
    } else if (arg == "--snapshot-epochs") {
      cfg.snapshot_epochs = std::strtoull(need_value(i), nullptr, 10);
    } else if (arg == "--byz-consensus") {
      cfg.byz_consensus = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (!have_f) cfg.f = (cfg.n - 1) / 3;
  if (cfg.n == 0 || cfg.id >= cfg.n || 3 * cfg.f + 1 > cfg.n) {
    std::fprintf(stderr, "setchain_node: need 0 <= id < n and 3f+1 <= n\n");
    return 2;
  }
  if (peers.size() != cfg.n) {
    std::fprintf(stderr, "setchain_node: need exactly n --peer entries (got %zu)\n",
                 peers.size());
    return 2;
  }
  if (listen.empty()) listen = peers[cfg.id];

  net::TcpConfig tcp;
  tcp.self = cfg.id;
  tcp.n = cfg.n;
  tcp.peers = peers;
  tcp.cluster = net::NodeHost::cluster_id_of(cfg);
  if (!net::parse_host_port(listen, tcp.listen_host, tcp.listen_port)) {
    std::fprintf(stderr, "setchain_node: bad --listen %s\n", listen.c_str());
    return 2;
  }

  try {
    std::unique_ptr<storage::Storage> store;
    if (!store_cfg.dir.empty()) {
      std::string err;
      store = storage::Storage::open(store_cfg, &err);
      if (store == nullptr) {
        std::fprintf(stderr, "setchain_node: storage: %s\n", err.c_str());
        return 1;
      }
    }

    sim::Simulation sim;
    net::TcpTransport transport(tcp);
    net::NodeHost host(cfg, sim, transport, store.get());

    if (store != nullptr) {
      std::string err;
      if (!host.recover(&err)) {
        std::fprintf(stderr, "setchain_node: recovery: %s\n", err.c_str());
        return 1;
      }
      if (!quiet) {
        const auto& r = store->recovery();
        std::fprintf(
            stderr,
            "setchain_node[%u] recovered: snapshot=%s height=%llu "
            "wal(blocks=%llu batches=%llu skipped=%llu truncated=%llu)%s%s\n",
            cfg.id, r.snapshot_loaded ? "yes" : "no",
            static_cast<unsigned long long>(r.snapshot_height),
            static_cast<unsigned long long>(r.wal_blocks_replayed),
            static_cast<unsigned long long>(r.wal_batches_replayed),
            static_cast<unsigned long long>(r.wal_records_skipped),
            static_cast<unsigned long long>(r.wal_truncated_bytes),
            r.diagnostic.empty() ? "" : " note: ",
            r.diagnostic.empty() ? "" : r.diagnostic.c_str());
      }
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    host.start();
    transport.start();
    if (!quiet) {
      std::fprintf(
          stderr,
          "setchain_node[%u/%u] %s/%s listening on %s:%u (cluster %016llx)\n",
          cfg.id, cfg.n, runner::algorithm_name(cfg.algorithm),
          runner::ledger_mode_name(cfg.ledger_mode), tcp.listen_host.c_str(),
          transport.listen_port(), static_cast<unsigned long long>(tcp.cluster));
    }
    host.run_realtime(g_stop);
    transport.stop();
    if (store != nullptr) store->sync();  // shutdown barrier: tail hits disk

    if (!quiet) {
      const auto c = transport.counters();
      std::fprintf(
          stderr,
          "setchain_node[%u] stopped: epoch=%llu the_set=%llu blocks=%llu "
          "rpcs=%llu frames(tx=%llu rx=%llu) bytes(tx=%llu rx=%llu) "
          "drops(peer=%llu client=%llu) decode_errors=%llu reconnects=%llu "
          "send_queue_peak=%llu\n",
          cfg.id, static_cast<unsigned long long>(host.server().epoch()),
          static_cast<unsigned long long>(host.server().the_set_size()),
          static_cast<unsigned long long>(host.ledger().height()),
          static_cast<unsigned long long>(host.rpcs_served()),
          static_cast<unsigned long long>(c.frames_sent),
          static_cast<unsigned long long>(c.frames_received),
          static_cast<unsigned long long>(c.bytes_sent),
          static_cast<unsigned long long>(c.bytes_received),
          static_cast<unsigned long long>(c.send_drops_peer),
          static_cast<unsigned long long>(c.send_drops_client),
          static_cast<unsigned long long>(c.decode_errors),
          static_cast<unsigned long long>(c.reconnects),
          static_cast<unsigned long long>(c.send_queue_peak));
      if (const auto* cons =
              dynamic_cast<const net::ConsensusLedger*>(&host.ledger())) {
        std::fprintf(
            stderr,
            "setchain_node[%u] consensus: equivocations=%llu masked=%u "
            "vote_sig_rejects=%llu cert_rejects=%llu votes_buffered=%llu "
            "votes_dropped_ahead=%llu\n",
            cfg.id,
            static_cast<unsigned long long>(cons->equivocations_detected()),
            cons->masked_count(),
            static_cast<unsigned long long>(cons->vote_sig_rejects()),
            static_cast<unsigned long long>(cons->cert_rejects()),
            static_cast<unsigned long long>(cons->votes_buffered()),
            static_cast<unsigned long long>(cons->votes_dropped_ahead()));
      }
      if (store != nullptr) {
        const auto& w = store->wal_counters();
        std::fprintf(
            stderr,
            "setchain_node[%u] storage: wal(records=%llu bytes=%llu "
            "fsyncs=%llu segments=%zu) snapshots(written=%llu last_height=%llu)\n",
            cfg.id, static_cast<unsigned long long>(w.records_appended),
            static_cast<unsigned long long>(w.bytes_appended),
            static_cast<unsigned long long>(w.fsyncs), store->wal_segment_count(),
            static_cast<unsigned long long>(store->snapshots_written()),
            static_cast<unsigned long long>(store->last_snapshot_height()));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "setchain_node: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
